//! Fleet-scale sharded serving with shard supervision and degraded-mode
//! continuity.
//!
//! The paper's online pipeline serves one event stream with one predictor.
//! A production deployment of the same methodology fronts a whole machine
//! room: thousands of machines whose RAS streams are partitioned across
//! worker shards, each shard running its own sliding window and predictor
//! state over a shared base rule repository (optionally specialised by a
//! per-shard overlay retrain).
//!
//! This module adds the serving fabric around that idea:
//!
//! * [`run_fleet`] partitions a time-sorted [`MachineEvent`] stream across
//!   `shards` workers (`machine % shards`), trains a shared base
//!   repository on the leading weeks, and serves the remaining weeks one
//!   block at a time on scoped worker threads;
//! * each shard is a **crash-isolated failure domain**: the worker body
//!   runs under `catch_unwind`, and the supervisor collects results
//!   against a per-block heartbeat deadline — a panic or a stall past the
//!   deadline marks the shard *down* instead of taking the fleet with it;
//! * a down shard's machines are not dropped: their block is served by a
//!   fleet-wide **fallback predictor** over the base repository (degraded
//!   accuracy, continuous coverage), and every event routed to the shard
//!   since its last checkpoint is retained in a bounded per-shard
//!   [`Spool`] that prefers shedding stale non-fatal events and *never*
//!   sheds a fatal;
//! * at the next block boundary the supervisor restarts the shard from
//!   its last atomic [`Checkpoint`](crate::persist::Checkpoint) and
//!   replays the spool (warnings suppressed) to rebuild the sliding
//!   window — a corrupt or unreadable checkpoint degrades to a *cold*
//!   restart over the base repository rather than an abort;
//! * with `supervise` off the same sharded execution runs with no fault
//!   recovery at all: on a clean trace it is bit-identical to the
//!   supervised run (the determinism baseline), and under faults it shows
//!   what supervision buys (a dead shard's events are simply lost).
//!
//! Fault injection is first-class: a [`FaultSchedule`] maps
//! `(week, shard)` to [`FleetFault`]s (kill, stall, checkpoint
//! corruption), so chaos experiments are reproducible.
//!
//! With [`FleetConfig::rollout`] set, rule distribution is owned by the
//! versioned registry ([`RuleRegistry`](crate::registry::RuleRegistry)):
//! fleet retrains produce staged candidates that canary on one shard and
//! only spread after holding within margin, with automatic fleet-wide
//! rollback to the known-good ring when a stage pages. `None` (the
//! default) keeps this path bit-identical to the registry-free driver.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

use raslog::store::{week_slice, window};
use raslog::{CleanEvent, MachineEvent, Timestamp, WEEK_MS};

use crate::config::FrameworkConfig;
use crate::evaluation::{score, Accuracy};
use crate::knowledge::KnowledgeRepository;
use crate::lifecycle::{canary_compare, RetrainBackoff};
use crate::meta::MetaLearner;
use crate::persist::{
    load_checkpoint_file, load_registry_file, save_checkpoint_file, save_registry_file, Checkpoint,
};
use crate::predictor::{Predictor, PredictorState, Warning};
use crate::registry::{RolloutConfig, RolloutDecision, RuleRegistry, StagePlan};
use crate::rules::Rule;
use crate::slo::{any_page, CycleAccuracy, SloWatchdog};

/// Fleet serving parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker shards the machine population is partitioned across.
    pub shards: usize,
    /// Core framework parameters (window, thresholds, …) shared by the
    /// base trainer and every shard predictor.
    pub framework: FrameworkConfig,
    /// Leading weeks used to train the shared base repository.
    pub base_training_weeks: i64,
    /// Retrain a per-shard overlay every this many serving weeks
    /// (0 disables overlays; every shard serves the base repository).
    pub overlay_retrain_weeks: i64,
    /// Trailing weeks of shard-local history an overlay trains on.
    pub overlay_window_weeks: i64,
    /// Run the shard supervisor (restart + spool replay + fallback).
    /// Off: a dead shard stays dead and its events are lost — useful
    /// only as the bit-identity baseline on clean traces.
    pub supervise: bool,
    /// Per-shard spool capacity before non-fatal shedding starts.
    pub spool_capacity: usize,
    /// Wall-clock deadline for a block's workers; a shard that has not
    /// reported by then is declared down.
    pub heartbeat: StdDuration,
    /// Write per-shard checkpoints under this directory (`shard-N.ckpt`)
    /// and restart from disk; `None` keeps checkpoints in memory.
    pub checkpoint_dir: Option<PathBuf>,
    /// Causal tracing across the fleet: ingest spans at partition,
    /// dispatch / predict / warn spans on each shard worker, fallback
    /// dispatch spans while a shard is down, resolve spans at scoring.
    /// The default ([`dml_obs::TraceConfig::disabled`]) records nothing
    /// and leaves the run bit-identical to the untraced fleet.
    pub trace: dml_obs::TraceConfig,
    /// Metrics time-series store scraped at the end of every serving
    /// week — fleet totals plus per-shard labeled `fleet.*{shard=…}`
    /// series. Strictly observational: `None` (the default) and `Some`
    /// produce bit-identical fleet reports.
    pub history: Option<dml_obs::SharedHistory>,
    /// Registry-owned staged rollout of fleet retrains (canary →
    /// fractions → fleet-wide, automatic rollback). `None` (the
    /// default) disables the registry entirely and is bit-identical to
    /// the registry-free driver; when set, per-shard overlay retrains
    /// ([`FleetConfig::overlay_retrain_weeks`]) are superseded — the
    /// registry owns rule distribution.
    pub rollout: Option<RolloutConfig>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 8,
            framework: FrameworkConfig::default(),
            base_training_weeks: 4,
            overlay_retrain_weeks: 0,
            overlay_window_weeks: 4,
            supervise: true,
            spool_capacity: 50_000,
            heartbeat: StdDuration::from_secs(5),
            checkpoint_dir: None,
            trace: dml_obs::TraceConfig::disabled(),
            history: None,
            rollout: None,
        }
    }
}

/// An injected shard fault, applied when the named block starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFault {
    /// The worker panics immediately (crash).
    Kill,
    /// The worker sleeps this long before serving; past the heartbeat
    /// deadline the supervisor declares it down (gray failure).
    Stall(StdDuration),
    /// The shard's stored checkpoint is corrupted *and* the worker is
    /// killed, so the recovery path must fall back to a cold restart.
    CorruptCheckpoint,
}

/// `(week, shard)` → fault. Weeks index the serving range, so the first
/// servable week is `base_training_weeks`.
pub type FaultSchedule = BTreeMap<(i64, usize), FleetFault>;

/// Bounded buffer of events routed to a shard since its last checkpoint.
///
/// On overflow the oldest *non-fatal* event is shed first; fatal events
/// are always admitted, over capacity if necessary, so a restart never
/// silently loses a failure.
#[derive(Debug, Clone, Default)]
pub struct Spool {
    events: VecDeque<CleanEvent>,
    capacity: usize,
    dropped_nonfatal: u64,
    overflow_fatals: u64,
}

impl Spool {
    /// An empty spool holding at most `capacity` events (fatal overflow
    /// excepted).
    pub fn new(capacity: usize) -> Self {
        Spool {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            ..Spool::default()
        }
    }

    /// Appends one event, shedding the oldest non-fatal on overflow.
    pub fn push(&mut self, ev: CleanEvent) {
        if self.events.len() >= self.capacity {
            if let Some(pos) = self.events.iter().position(|e| !e.fatal) {
                self.events.remove(pos);
                self.dropped_nonfatal += 1;
            } else {
                // Nothing sheddable: every buffered event is fatal.
                // Admit over capacity rather than lose one.
                self.overflow_fatals += 1;
            }
        }
        self.events.push_back(ev);
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> Vec<CleanEvent> {
        self.events.iter().cloned().collect()
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Non-fatal events shed on overflow so far.
    pub fn dropped_nonfatal(&self) -> u64 {
        self.dropped_nonfatal
    }

    /// Fatal events admitted past capacity so far.
    pub fn overflow_fatals(&self) -> u64 {
        self.overflow_fatals
    }

    /// Empties the buffer (after a successful checkpoint).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Per-shard slice of a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Distinct machines routed to this shard.
    pub machines: u64,
    /// Events served (live worker + fallback).
    pub events_served: u64,
    /// Accuracy over the shard's serving-period stream.
    pub accuracy: Accuracy,
    /// Warnings issued for this shard (live + fallback-attributed).
    pub warnings: Vec<Warning>,
    /// Supervisor restarts of this shard.
    pub restarts: u64,
    /// Restarts that could not use a checkpoint (corrupt / missing).
    pub cold_restarts: u64,
    /// Spooled events replayed across all restarts.
    pub replayed_events: u64,
    /// Events served by the fleet-wide fallback while this shard was down.
    pub fallback_events: u64,
    /// Events never served (unsupervised dead shard only).
    pub lost_events: u64,
    /// Fatal events among [`ShardReport::lost_events`].
    pub lost_fatal_events: u64,
    /// Non-fatal events the spool shed on overflow.
    pub spool_dropped_nonfatal: u64,
    /// Fatal events the spool admitted past capacity.
    pub spool_overflow_fatals: u64,
    /// Corrupt/unreadable checkpoints encountered at restart.
    pub checkpoint_corruptions: u64,
    /// Version of the repository the shard finished serving with.
    pub final_repo_version: u64,
}

/// What a fleet run did: per-shard accounting plus fleet-wide totals.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard accounting.
    pub shards: Vec<ShardReport>,
    /// Fleet-wide accuracy (per-shard counts summed).
    pub overall: Accuracy,
    /// Distinct machines across the fleet.
    pub machines: u64,
    /// Serving weeks (total minus base training).
    pub serving_weeks: i64,
    /// Events served fleet-wide (live + fallback).
    pub events_served: u64,
    /// Wall-clock serving time (training excluded).
    pub elapsed: StdDuration,
    /// Supervisor restarts across all shards.
    pub restarts: u64,
    /// Cold restarts across all shards.
    pub cold_restarts: u64,
    /// Kill faults injected.
    pub kills_injected: u64,
    /// Stall faults injected.
    pub stalls_injected: u64,
    /// Checkpoint-corruption faults injected.
    pub corruptions_injected: u64,
    /// Events never served (unsupervised dead shards).
    pub lost_events: u64,
    /// Fatal events among [`FleetReport::lost_events`]. Zero whenever
    /// the supervisor is on — the continuity guarantee.
    pub lost_fatal_events: u64,
    /// Events served by the fleet-wide fallback predictor.
    pub fallback_events: u64,
    /// Checkpoints written (initial + per successful shard-block).
    pub checkpoints_written: u64,
    /// Per-shard overlay retrains performed.
    pub overlay_retrains: u64,
    /// Whether the staged-rollout registry was active for this run.
    pub rollout_enabled: bool,
    /// Fleet retrains performed by the registry (candidates produced).
    pub fleet_retrains: u64,
    /// Fleet retrains whose training window was chaos-poisoned.
    pub poisoned_retrains: u64,
    /// Staged rollouts begun.
    pub rollouts_started: u64,
    /// Candidates promoted fleet-wide.
    pub rollouts_promoted: u64,
    /// Candidates rolled back by a paging stage.
    pub rollouts_rolled_back: u64,
    /// Registry checkpoints found corrupt by the weekly self-check.
    pub registry_corruptions: u64,
    /// Known-good versions retained by the registry at end of run.
    pub rollout_known_good: Vec<u64>,
    /// Wall-clock latency per traced pipeline hop (`ingest`, `dispatch`,
    /// `predict`, …), merged across the supervisor and every shard
    /// worker. Empty when tracing is off.
    pub stage_latency_us: BTreeMap<String, dml_obs::Histogram>,
    /// Tracer accounting for the run (spans recorded / emitted,
    /// promotions, pending drops). All zero when tracing is off.
    pub trace: dml_obs::TraceCounters,
}

impl FleetReport {
    /// Aggregate serving throughput (events per wall-clock second).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.events_served as f64 / secs
        }
    }
}

impl dml_obs::MetricSource for FleetReport {
    fn export(&self, registry: &mut dml_obs::Registry) {
        registry.gauge_set("fleet.shards", self.shards.len() as f64);
        registry.gauge_set("fleet.machines", self.machines as f64);
        registry.counter_add("fleet.events_served", self.events_served);
        registry.gauge_set("fleet.events_per_sec", self.events_per_sec());
        registry.counter_add("fleet.restarts", self.restarts);
        registry.counter_add("fleet.cold_restarts", self.cold_restarts);
        registry.counter_add("fleet.kills_injected", self.kills_injected);
        registry.counter_add("fleet.stalls_injected", self.stalls_injected);
        registry.counter_add("fleet.corruptions_injected", self.corruptions_injected);
        registry.counter_add("fleet.lost_events", self.lost_events);
        registry.counter_add("fleet.lost_fatal_events", self.lost_fatal_events);
        registry.counter_add("fleet.fallback_events", self.fallback_events);
        registry.counter_add("fleet.checkpoints_written", self.checkpoints_written);
        registry.counter_add("fleet.overlay_retrains", self.overlay_retrains);
        if self.rollout_enabled {
            registry.counter_add("fleet.fleet_retrains", self.fleet_retrains);
            registry.counter_add("fleet.poisoned_retrains", self.poisoned_retrains);
            registry.counter_add("fleet.rollouts_started", self.rollouts_started);
            registry.counter_add("fleet.rollouts_promoted", self.rollouts_promoted);
            registry.counter_add("fleet.rollouts_rolled_back", self.rollouts_rolled_back);
            registry.counter_add("fleet.registry_corruptions", self.registry_corruptions);
            registry.gauge_set("fleet.rollout_known_good", self.rollout_known_good.len() as f64);
        }
        let dropped: u64 = self.shards.iter().map(|s| s.spool_dropped_nonfatal).sum();
        let overflow: u64 = self.shards.iter().map(|s| s.spool_overflow_fatals).sum();
        registry.counter_add("fleet.spool_dropped_nonfatal", dropped);
        registry.counter_add("fleet.spool_overflow_fatals", overflow);
        registry.gauge_set("fleet.precision", self.overall.precision());
        registry.gauge_set("fleet.recall", self.overall.recall());
        // Per-shard labeled families: the fleet-wide series above stay
        // the totals, the labels break them down by failure domain.
        for s in &self.shards {
            let shard = s.shard.to_string();
            let labels = [("shard", shard.as_str())];
            registry.counter_add_with("fleet.events_served", &labels, s.events_served);
            registry.counter_add_with("fleet.warnings", &labels, s.warnings.len() as u64);
            registry.counter_add_with("fleet.restarts", &labels, s.restarts);
            registry.counter_add_with("fleet.fallback_events", &labels, s.fallback_events);
            registry.counter_add_with("fleet.lost_events", &labels, s.lost_events);
            registry.gauge_set_with("fleet.precision", &labels, s.accuracy.precision());
            registry.gauge_set_with("fleet.recall", &labels, s.accuracy.recall());
            registry.gauge_set_with("fleet.repo_version", &labels, s.final_repo_version as f64);
        }
        for (stage, h) in &self.stage_latency_us {
            registry.merge_histogram_with("fleet.stage_latency_us", &[("stage", stage)], h);
        }
        registry.counter_add("trace.spans_recorded", self.trace.spans_recorded);
        registry.counter_add("trace.spans_emitted", self.trace.spans_emitted);
        registry.counter_add("trace.traces_promoted", self.trace.traces_promoted);
        registry.counter_add("trace.pending_dropped", self.trace.pending_dropped);
    }
}

/// How a worker's block ended.
enum WorkerOutcome {
    Done {
        state: PredictorState,
        warnings: Vec<Warning>,
        /// The worker's own tracer (dispatch / predict / warn spans for
        /// its block); the supervisor absorbs it. Disabled when fleet
        /// tracing is off.
        tracer: Box<dml_obs::Tracer>,
    },
    Panicked(String),
}

/// Supervisor-side live state for one shard.
struct ShardRuntime {
    repo: Arc<KnowledgeRepository>,
    state: PredictorState,
    spool: Spool,
    checkpoint: Option<Checkpoint>,
    checkpoint_corrupt: bool,
    down: bool,
    /// Unsupervised only: the shard died and will never serve again.
    dead: bool,
    warnings: Vec<Warning>,
    events_served: u64,
    restarts: u64,
    cold_restarts: u64,
    replayed: u64,
    fallback_events: u64,
    lost_events: u64,
    lost_fatals: u64,
    checkpoint_corruptions: u64,
}

/// Supervisor-side state of the staged-rollout registry loop.
struct RolloutRuntime {
    cfg: RolloutConfig,
    registry: RuleRegistry,
    backoff: RetrainBackoff,
    /// Per staged shard, reset when a rollout ends.
    watchdogs: BTreeMap<usize, SloWatchdog>,
    /// First week the next fleet retrain may run.
    next_retrain_week: i64,
    /// Each shard's warning count at the start of the current serving
    /// week — next week's stage judgement scores the delta.
    warn_marks: Vec<usize>,
    /// Which shards served the previous week via the fallback (their
    /// week says nothing about the candidate).
    down_last_week: Vec<bool>,
    fleet_retrains: u64,
    poisoned_retrains: u64,
    registry_corruptions: u64,
    /// Stage-transition timeline entries awaiting the weekly history
    /// scrape (`repro health --history` renders them as alerts).
    pending_alerts: Vec<dml_obs::AlertRecord>,
}

impl RolloutRuntime {
    fn transition(&mut self, week: i64, rule: &str, severity: &str, state: &str, value: f64) {
        self.pending_alerts.push(dml_obs::AlertRecord {
            t_ms: (week + 1) * WEEK_MS,
            rule: rule.to_string(),
            series: "fleet.rollout_stage".to_string(),
            severity: severity.to_string(),
            state: state.to_string(),
            value,
        });
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Rule-id-indexed predictor state does not survive a repository swap
/// (ids are positional), so pending per-rule warnings are dropped while
/// the type-indexed windows and target suppressions carry over.
fn rebase_state(state: &PredictorState) -> PredictorState {
    let mut s = state.clone();
    s.active.clear();
    s
}

fn shard_checkpoint_path(dir: &std::path::Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.ckpt"))
}

/// Runs the sharded fleet pipeline over a time-sorted multi-machine
/// stream. See the module docs for the execution model.
///
/// `faults` may be empty (clean run). `flight` receives `shard_down` /
/// `shard_restarted` records stamped at block boundaries; pass
/// [`FlightRecorder::disabled`](dml_obs::FlightRecorder::disabled) to
/// skip recording.
///
/// # Panics
///
/// Panics when `weeks` leaves no serving range
/// (`base_training_weeks >= weeks`) or `shards == 0`.
pub fn run_fleet(
    events: &[MachineEvent],
    weeks: i64,
    config: &FleetConfig,
    faults: &FaultSchedule,
    flight: &mut dml_obs::FlightRecorder,
) -> FleetReport {
    assert!(config.shards > 0, "fleet needs at least one shard");
    assert!(
        config.base_training_weeks > 0 && config.base_training_weeks < weeks,
        "base training weeks must leave a serving range"
    );
    let shards = config.shards;
    let window_len = config.framework.window;

    // The supervisor's tracer: ingest spans here, worker tracers folded
    // in per block, fallback and resolve spans below, drained into the
    // flight recorder at the end. Disabled config → every call no-ops.
    let mut tracer = dml_obs::Tracer::new(config.trace);

    // Partition the stream: machine % shards. Per-shard streams stay
    // time-sorted because the input is.
    let mut shard_events: Vec<Vec<CleanEvent>> = vec![Vec::new(); shards];
    let mut shard_machines: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); shards];
    for me in events {
        let s = (me.machine as usize) % shards;
        if tracer.enabled() {
            let ctx = tracer.context(me.event.time.0, me.event.type_id.0, me.event.fatal);
            tracer.record(
                ctx,
                dml_obs::trace::stage::INGEST,
                Some(s as u32),
                me.event.time.0,
                0,
                "ok",
            );
        }
        shard_events[s].push(me.event);
        shard_machines[s].insert(me.machine);
    }
    for stream in &mut shard_events {
        stream.sort_by_key(|e| e.time);
    }

    // Shared base repository from the merged leading weeks.
    let train_end = Timestamp(config.base_training_weeks * WEEK_MS);
    let train: Vec<CleanEvent> = window(events, Timestamp(0), train_end)
        .iter()
        .map(|m| m.event)
        .collect();
    let mut base_repo = MetaLearner::new(config.framework).train(&train).repo;
    base_repo.set_version(1);
    let base = Arc::new(base_repo);

    let mut checkpoints_written = 0u64;
    let mut overlay_retrains = 0u64;

    // Per-shard runtimes: warm each predictor with the shard's own final
    // training week (the driver's warm-up idiom), then checkpoint so
    // every shard has a restart point from the first block on.
    let mut runtimes: Vec<ShardRuntime> = (0..shards)
        .map(|s| {
            let mut p = Predictor::new(&base, window_len);
            let warm = window(
                &shard_events[s],
                Timestamp((config.base_training_weeks - 1) * WEEK_MS),
                train_end,
            );
            p.warm_up(warm);
            p.reset_metrics();
            let state = p.snapshot();
            let checkpoint = Checkpoint::new(base.version(), (*base).clone(), state.clone());
            if let Some(dir) = &config.checkpoint_dir {
                match save_checkpoint_file(&checkpoint, shard_checkpoint_path(dir, s)) {
                    Ok(()) => {}
                    Err(e) => dml_obs::warn!("shard {s} checkpoint write failed (continuing): {e}"),
                }
            }
            checkpoints_written += 1;
            ShardRuntime {
                repo: base.clone(),
                state,
                spool: Spool::new(config.spool_capacity),
                checkpoint: Some(checkpoint),
                checkpoint_corrupt: false,
                down: false,
                dead: false,
                warnings: Vec::new(),
                events_served: 0,
                restarts: 0,
                cold_restarts: 0,
                replayed: 0,
                fallback_events: 0,
                lost_events: 0,
                lost_fatals: 0,
                checkpoint_corruptions: 0,
            }
        })
        .collect();

    // The fleet-wide fallback: one predictor over the base repository
    // that absorbs every down shard's traffic. Persistent across blocks
    // so repeated incidents keep its sliding window warm.
    let mut fallback_state = Predictor::new(&base, window_len).snapshot();

    // Registry-owned rule distribution: the stage plan excludes pinned
    // shards, the known-good ring starts with the base (v1), and the
    // first fleet retrain is due one cadence after base training.
    let mut rollout: Option<RolloutRuntime> = config.rollout.as_ref().map(|rc| {
        let pin_set: BTreeSet<usize> = rc.pins.keys().copied().collect();
        for (&s, &v) in &rc.pins {
            if s >= shards {
                dml_obs::warn!("pin {s}={v} ignored: shard out of range");
            } else if v != base.version() {
                dml_obs::warn!(
                    "pin {s}={v}: only base v{} exists at start; shard {s} serves the base",
                    base.version()
                );
            }
        }
        RolloutRuntime {
            registry: RuleRegistry::new(
                StagePlan::build(shards, &rc.stage_fractions, &pin_set),
                rc.dwell_weeks,
                rc.known_good_capacity,
                base.version(),
                (*base).clone(),
            ),
            backoff: RetrainBackoff::default(),
            watchdogs: BTreeMap::new(),
            next_retrain_week: config.base_training_weeks + rc.retrain_weeks.max(1),
            warn_marks: vec![0; shards],
            down_last_week: vec![false; shards],
            fleet_retrains: 0,
            poisoned_retrains: 0,
            registry_corruptions: 0,
            pending_alerts: Vec::new(),
            cfg: rc.clone(),
        }
    });

    let mut kills_injected = 0u64;
    let mut stalls_injected = 0u64;
    let mut corruptions_injected = 0u64;
    // Per-shard high-water marks of warnings already flight-recorded.
    let mut flight_marks = vec![0usize; shards];
    let serving_start = Instant::now();

    for week in config.base_training_weeks..weeks {
        let t_ms = week * WEEK_MS;

        // 1. Bring back shards that went down last block (supervised).
        if config.supervise {
            for (s, rt) in runtimes.iter_mut().enumerate() {
                if !rt.down {
                    continue;
                }
                let restored = if let Some(dir) = &config.checkpoint_dir {
                    match load_checkpoint_file(shard_checkpoint_path(dir, s)) {
                        Ok(cp) => Some(cp),
                        Err(e) => {
                            dml_obs::warn!("shard {s} checkpoint unreadable at restart: {e}");
                            None
                        }
                    }
                } else if rt.checkpoint_corrupt {
                    None
                } else {
                    rt.checkpoint.clone()
                };
                let (cold, from_version) = match restored {
                    Some(cp) => {
                        rt.repo = Arc::new(cp.repo);
                        rt.state = cp.predictor;
                        (false, cp.rule_set_version)
                    }
                    None => {
                        // Corrupt or missing: cold restart over the base
                        // repository — degraded, never fatal.
                        rt.checkpoint_corruptions += 1;
                        rt.repo = base.clone();
                        rt.state = Predictor::new(&base, window_len).snapshot();
                        (true, 0)
                    }
                };
                // Replay the spool (everything routed here since the
                // checkpoint) with warnings suppressed: this rebuilds the
                // sliding window, it does not re-serve.
                let replay = rt.spool.events();
                let mut p = Predictor::restore(&rt.repo, window_len, rt.state.clone());
                p.warm_up(&replay);
                rt.state = p.snapshot();
                rt.replayed += replay.len() as u64;
                rt.restarts += 1;
                if cold {
                    rt.cold_restarts += 1;
                }
                rt.down = false;
                flight.record(
                    t_ms,
                    dml_obs::FlightEvent::ShardRestarted {
                        shard: s as u64,
                        week,
                        from_version,
                        replayed: replay.len() as u64,
                        cold,
                    },
                );
            }
        }

        // 2a. Registry-owned rollout loop: judge last week's staged
        // serving, act on the verdict, self-check the on-disk registry
        // checkpoint, then produce a fresh candidate when one is due.
        if let Some(ro) = rollout.as_mut() {
            if ro.registry.active() {
                let staged: Vec<usize> = ro.registry.staged_shards().to_vec();
                let (cand_version, cand) = {
                    let (v, r) = ro.registry.candidate().expect("active rollout has a candidate");
                    (v, r.clone())
                };
                let inc = ro.registry.incumbent().1.clone();
                // Judge week `week - 1` of every staged shard that a live
                // worker actually served: shadow-replay the candidate vs
                // the incumbent over the shard's own traffic, and feed
                // the shard's live accuracy to its burn-rate watchdog.
                let mut page = false;
                let mut evaluated = false;
                let slo = ro.cfg.slo;
                for &s in &staged {
                    if ro.down_last_week[s] {
                        continue; // fallback served it — not candidate evidence
                    }
                    let tail = week_slice(&shard_events[s], week - 1);
                    if tail.is_empty() {
                        continue;
                    }
                    evaluated = true;
                    let warm = week_slice(&shard_events[s], week - 2);
                    let verdict =
                        canary_compare(&cand, &inc, warm, tail, window_len, ro.cfg.margin);
                    if !verdict.accepted {
                        page = true;
                    }
                    let live = score(&runtimes[s].warnings[ro.warn_marks[s]..], tail);
                    let alerts = ro
                        .watchdogs
                        .entry(s)
                        .or_insert_with(|| SloWatchdog::new(slo))
                        .on_cycle(&CycleAccuracy {
                            week: week - 1,
                            accuracy: live,
                        });
                    if any_page(&alerts) {
                        page = true;
                    }
                }
                match ro.registry.observe_week(page, evaluated) {
                    RolloutDecision::Rollback { from, stage, to } => {
                        // Fleet-wide rollback: every staged shard reverts
                        // to the known-good version under its original
                        // stamp, so post-rollback warning provenance
                        // names the known-good rule set.
                        let repo = Arc::new(
                            ro.registry
                                .known_good(to)
                                .expect("rollback target is retained in the ring"),
                        );
                        for &s in &staged {
                            let rt = &mut runtimes[s];
                            rt.repo = repo.clone();
                            rt.state = rebase_state(&rt.state);
                        }
                        ro.watchdogs.clear();
                        ro.next_retrain_week = week
                            + ro.backoff
                                .on_page(ro.cfg.backoff_base_weeks, ro.cfg.backoff_cap_weeks);
                        flight.record(
                            t_ms,
                            dml_obs::FlightEvent::RolloutRolledBack {
                                week,
                                from_version: from,
                                to_version: to,
                                stage: stage as u64,
                                shards_reverted: staged.len() as u64,
                            },
                        );
                        ro.transition(week, "rollout-rollback", "page", "firing", from as f64);
                    }
                    RolloutDecision::Advance { stage } => {
                        let newly: Vec<usize> = ro
                            .registry
                            .staged_shards()
                            .iter()
                            .copied()
                            .filter(|s| !staged.contains(s))
                            .collect();
                        let repo = Arc::new(cand.clone());
                        for &s in &newly {
                            let rt = &mut runtimes[s];
                            rt.repo = repo.clone();
                            rt.state = rebase_state(&rt.state);
                        }
                        flight.record(
                            t_ms,
                            dml_obs::FlightEvent::RolloutStage {
                                week,
                                version: cand_version,
                                stage: stage as u64,
                                stages: ro.registry.plan().len() as u64,
                                shards: ro.registry.staged_shards().len() as u64,
                                promoted: false,
                            },
                        );
                        ro.transition(week, "rollout-stage", "warn", "firing", stage as f64);
                    }
                    RolloutDecision::Promote { version } => {
                        // The final stage already serves the candidate
                        // everywhere eligible; promotion just makes it
                        // the incumbent and a known-good ring member.
                        ro.backoff.on_healthy();
                        ro.watchdogs.clear();
                        ro.next_retrain_week = week + ro.cfg.retrain_weeks.max(1);
                        flight.record(
                            t_ms,
                            dml_obs::FlightEvent::RolloutStage {
                                week,
                                version,
                                stage: ro.registry.plan().len() as u64,
                                stages: ro.registry.plan().len() as u64,
                                shards: staged.len() as u64,
                                promoted: true,
                            },
                        );
                        ro.transition(week, "rollout-stage", "warn", "resolved", version as f64);
                    }
                    RolloutDecision::Hold | RolloutDecision::Idle => {}
                }
            }

            // Persist and self-check the registry checkpoint. A
            // scribbled file must never take the registry down: the
            // in-memory state keeps serving, the corruption is counted,
            // and a good copy is rewritten.
            if let Some(dir) = &config.checkpoint_dir {
                let path = dir.join("registry.ckpt");
                if let Err(e) = save_registry_file(&ro.registry.checkpoint(), &path) {
                    dml_obs::warn!("registry checkpoint write failed (continuing): {e}");
                }
                if ro.cfg.chaos.corrupt_registry_weeks.contains(&week) {
                    if let Err(e) = std::fs::write(&path, b"\x00registry\x00") {
                        dml_obs::warn!("could not corrupt {}: {e}", path.display());
                    }
                }
                if let Err(e) = load_registry_file(&path) {
                    ro.registry_corruptions += 1;
                    dml_obs::warn!(
                        "registry checkpoint corrupt (in-memory registry keeps serving): {e}"
                    );
                    if let Err(e) = save_registry_file(&ro.registry.checkpoint(), &path) {
                        dml_obs::warn!("registry checkpoint rewrite failed: {e}");
                    }
                }
            }

            // Fleet retrain when due and nothing is staging: the
            // candidate is a full replacement trained on the trailing
            // window of the merged fleet stream (never base-merged — a
            // poisoned window must yield a candidate the canary catches,
            // not one masked by inherited base rules).
            if !ro.registry.active() && week >= ro.next_retrain_week {
                let from = Timestamp((week - ro.cfg.window_weeks).max(0) * WEEK_MS);
                let mut train: Vec<CleanEvent> = window(events, from, Timestamp(week * WEEK_MS))
                    .iter()
                    .map(|m| m.event)
                    .collect();
                if ro.cfg.chaos.poison_retrain_weeks.contains(&week) {
                    // Chaos: strip every fatal so the candidate learns no
                    // failure signatures and its recall collapses.
                    train.retain(|e| !e.fatal);
                    ro.poisoned_retrains += 1;
                }
                ro.fleet_retrains += 1;
                let candidate = MetaLearner::new(config.framework).train(&train).repo;
                let begun = ro.registry.begin(candidate).map(|(v, s)| (v, s.to_vec()));
                if let Some((version, canary)) = begun {
                    let repo = Arc::new(
                        ro.registry
                            .candidate()
                            .expect("begin staged a candidate")
                            .1
                            .clone(),
                    );
                    for &s in &canary {
                        let rt = &mut runtimes[s];
                        rt.repo = repo.clone();
                        rt.state = rebase_state(&rt.state);
                    }
                    flight.record(
                        t_ms,
                        dml_obs::FlightEvent::RolloutStage {
                            week,
                            version,
                            stage: 0,
                            stages: ro.registry.plan().len() as u64,
                            shards: canary.len() as u64,
                            promoted: false,
                        },
                    );
                    ro.transition(week, "rollout-stage", "warn", "firing", 0.0);
                }
                ro.next_retrain_week = week + ro.cfg.retrain_weeks.max(1);
            }

            // Mark the start of this serving week: next week's stage
            // judgement scores `warnings[mark..]` against the week.
            for (s, rt) in runtimes.iter().enumerate() {
                ro.warn_marks[s] = rt.warnings.len();
            }
        }

        // 2. Per-shard overlay retrain at the configured cadence
        // (superseded entirely when the rollout registry owns rules).
        if config.rollout.is_none()
            && config.overlay_retrain_weeks > 0
            && week > config.base_training_weeks
            && (week - config.base_training_weeks) % config.overlay_retrain_weeks == 0
        {
            for (s, rt) in runtimes.iter_mut().enumerate() {
                if rt.dead {
                    continue;
                }
                let from = Timestamp((week - config.overlay_window_weeks).max(0) * WEEK_MS);
                let recent = window(&shard_events[s], from, Timestamp(week * WEEK_MS));
                if recent.is_empty() {
                    continue;
                }
                let overlay = MetaLearner::new(config.framework).train(recent).repo;
                // Base rules first (ids stable across swaps), then
                // overlay rules the base does not already know.
                let mut seen = base.identities();
                let mut rules: Vec<(Rule, Option<Accuracy>)> = base
                    .rules()
                    .iter()
                    .map(|sr| (sr.rule.clone(), sr.training_counts))
                    .collect();
                for sr in overlay.rules() {
                    if seen.insert(sr.rule.identity()) {
                        rules.push((sr.rule.clone(), sr.training_counts));
                    }
                }
                let mut merged = KnowledgeRepository::with_counts(rules);
                merged.set_version(((week as u64) << 8) | s as u64);
                rt.repo = Arc::new(merged);
                rt.state = rebase_state(&rt.state);
                overlay_retrains += 1;
            }
        }

        // 3. Apply checkpoint-corruption faults for this block: scribble
        // the stored checkpoint, then kill the worker so recovery has to
        // take the cold path.
        for (s, rt) in runtimes.iter_mut().enumerate() {
            if faults.get(&(week, s)) == Some(&FleetFault::CorruptCheckpoint) {
                corruptions_injected += 1;
                rt.checkpoint_corrupt = true;
                if let Some(dir) = &config.checkpoint_dir {
                    let path = shard_checkpoint_path(dir, s);
                    if let Err(e) = std::fs::write(&path, b"\x00corrupt\x00") {
                        dml_obs::warn!("could not corrupt {}: {e}", path.display());
                    }
                }
            }
        }

        // 4. Serve the block on scoped worker threads, one per live
        // shard, each crash-isolated behind catch_unwind.
        let live: Vec<usize> = (0..shards).filter(|&s| !runtimes[s].dead).collect();
        let mut outcomes: BTreeMap<usize, WorkerOutcome> = BTreeMap::new();
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, WorkerOutcome)>();
            for &s in &live {
                let tx = tx.clone();
                let slice = week_slice(&shard_events[s], week);
                let repo = runtimes[s].repo.clone();
                let state = runtimes[s].state.clone();
                let fault = faults.get(&(week, s)).cloned();
                let trace_config = config.trace;
                scope.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        match &fault {
                            Some(FleetFault::Stall(d)) => std::thread::sleep(*d),
                            Some(FleetFault::Kill) | Some(FleetFault::CorruptCheckpoint) => {
                                panic!("fleet chaos: injected shard fault")
                            }
                            None => {}
                        }
                        let mut p = Predictor::restore(&repo, window_len, state);
                        let mut tracer = dml_obs::Tracer::new(trace_config);
                        let mut warnings = Vec::new();
                        if tracer.enabled() {
                            for ev in slice {
                                let ctx = tracer.context(ev.time.0, ev.type_id.0, ev.fatal);
                                tracer.record(
                                    ctx,
                                    dml_obs::trace::stage::DISPATCH,
                                    Some(s as u32),
                                    ev.time.0,
                                    0,
                                    "ok",
                                );
                                crate::overlap::observe_traced(
                                    &mut p,
                                    &mut tracer,
                                    Some(s as u32),
                                    ev,
                                    &mut warnings,
                                );
                            }
                        } else {
                            warnings = p.observe_all(slice);
                        }
                        (p.snapshot(), warnings, tracer)
                    }));
                    let outcome = match result {
                        Ok((state, warnings, tracer)) => WorkerOutcome::Done {
                            state,
                            warnings,
                            tracer: Box::new(tracer),
                        },
                        Err(payload) => WorkerOutcome::Panicked(panic_message(payload)),
                    };
                    let _ = tx.send((s, outcome));
                });
            }
            drop(tx);
            if config.supervise {
                let deadline = Instant::now() + config.heartbeat;
                while outcomes.len() < live.len() {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        break; // stragglers are down: missed heartbeat
                    }
                    match rx.recv_timeout(remaining) {
                        Ok((s, o)) => {
                            outcomes.insert(s, o);
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            } else {
                while let Ok((s, o)) = rx.recv() {
                    outcomes.insert(s, o);
                }
            }
        });
        for f in faults.iter().filter(|((w, _), _)| *w == week) {
            match f.1 {
                FleetFault::Kill => kills_injected += 1,
                FleetFault::Stall(_) => stalls_injected += 1,
                FleetFault::CorruptCheckpoint => {} // counted in step 3
            }
        }

        // 5. Fold results: successful shards advance state and
        // checkpoint; failed shards go down (supervised) or die
        // (unsupervised). Down shards' traffic is collected for the
        // fallback pass below.
        let mut shed: Vec<usize> = Vec::new();
        for &s in &live {
            let slice = week_slice(&shard_events[s], week);
            let rt = &mut runtimes[s];
            match outcomes.remove(&s) {
                Some(WorkerOutcome::Done {
                    state,
                    warnings,
                    tracer: worker_tracer,
                }) => {
                    tracer.absorb(*worker_tracer);
                    rt.state = state;
                    rt.warnings.extend(warnings);
                    rt.events_served += slice.len() as u64;
                    if config.supervise {
                        for ev in slice {
                            rt.spool.push(*ev);
                        }
                        let checkpoint = Checkpoint::new(
                            rt.repo.version(),
                            (*rt.repo).clone(),
                            rt.state.clone(),
                        );
                        if let Some(dir) = &config.checkpoint_dir {
                            match save_checkpoint_file(&checkpoint, shard_checkpoint_path(dir, s)) {
                                Ok(()) => {}
                                Err(e) => dml_obs::warn!(
                                    "shard {s} checkpoint write failed (continuing): {e}"
                                ),
                            }
                        }
                        rt.checkpoint = Some(checkpoint);
                        rt.checkpoint_corrupt = false;
                        rt.spool.clear();
                        checkpoints_written += 1;
                    }
                }
                outcome => {
                    let cause = match &outcome {
                        Some(WorkerOutcome::Panicked(msg)) => {
                            dml_obs::warn!("shard {s} worker panicked: {msg}");
                            "panic"
                        }
                        _ => "heartbeat",
                    };
                    if config.supervise {
                        rt.down = true;
                        shed.push(s);
                        flight.record(
                            t_ms,
                            dml_obs::FlightEvent::ShardDown {
                                shard: s as u64,
                                week,
                                cause: cause.to_string(),
                            },
                        );
                    } else {
                        rt.dead = true;
                        flight.record(
                            t_ms,
                            dml_obs::FlightEvent::ShardDown {
                                shard: s as u64,
                                week,
                                cause: "unsupervised".to_string(),
                            },
                        );
                    }
                }
            }
        }

        // 6. Degraded-mode continuity: serve every down shard's block
        // through the fleet-wide fallback predictor over the base
        // repository, attributing warnings to the event's shard, and
        // spool the events for replay at restart.
        if config.supervise && !shed.is_empty() {
            let mut merged: Vec<(usize, &CleanEvent)> = Vec::new();
            for &s in &shed {
                for ev in week_slice(&shard_events[s], week) {
                    merged.push((s, ev));
                }
            }
            merged.sort_by_key(|(s, ev)| (ev.time, *s, ev.type_id));
            let mut p = Predictor::restore(&base, window_len, fallback_state);
            for (s, ev) in &merged {
                let warnings = if tracer.enabled() {
                    // The degraded path is the chain worth keeping: a
                    // dispatch span with outcome "fallback" marks where
                    // the event crossed the shard restart.
                    let ctx = tracer.context(ev.time.0, ev.type_id.0, ev.fatal);
                    tracer.record(
                        ctx,
                        dml_obs::trace::stage::DISPATCH,
                        Some(*s as u32),
                        ev.time.0,
                        0,
                        "fallback",
                    );
                    let mut issued = Vec::new();
                    crate::overlap::observe_traced(
                        &mut p,
                        &mut tracer,
                        Some(*s as u32),
                        ev,
                        &mut issued,
                    );
                    issued
                } else {
                    p.observe(ev)
                };
                let rt = &mut runtimes[*s];
                rt.warnings.extend(warnings);
                rt.fallback_events += 1;
                rt.events_served += 1;
                rt.spool.push(**ev);
            }
            fallback_state = p.snapshot();
        }

        // 7. Unsupervised dead shards lose their block outright.
        if !config.supervise {
            for (s, rt) in runtimes.iter_mut().enumerate() {
                if rt.dead {
                    let slice = week_slice(&shard_events[s], week);
                    // A shard that died *this* block already had its
                    // events routed to the worker; they are lost too.
                    rt.lost_events += slice.len() as u64;
                    rt.lost_fatals += slice.iter().filter(|e| e.fatal).count() as u64;
                }
            }
        }

        // 8. Scrape the week into the history store: fleet totals plus
        // per-shard labeled breakdowns. Strictly observational — the
        // supervisor and workers never read it.
        if let Some(history) = &config.history {
            let mut scrape = dml_obs::Registry::new();
            let mut down_now = 0u64;
            for (s, rt) in runtimes.iter().enumerate() {
                let shard = s.to_string();
                let labels = [("shard", shard.as_str())];
                scrape.counter_add_with("fleet.events_served", &labels, rt.events_served);
                scrape.counter_add_with("fleet.warnings", &labels, rt.warnings.len() as u64);
                scrape.counter_add_with("fleet.restarts", &labels, rt.restarts);
                scrape.counter_add_with("fleet.fallback_events", &labels, rt.fallback_events);
                scrape.counter_add_with("fleet.lost_events", &labels, rt.lost_events);
                scrape.counter_add("fleet.events_served", rt.events_served);
                scrape.counter_add("fleet.warnings", rt.warnings.len() as u64);
                scrape.counter_add("fleet.restarts", rt.restarts);
                scrape.counter_add("fleet.cold_restarts", rt.cold_restarts);
                scrape.counter_add("fleet.fallback_events", rt.fallback_events);
                scrape.counter_add("fleet.lost_events", rt.lost_events);
                scrape.counter_add("fleet.lost_fatal_events", rt.lost_fatals);
                scrape.counter_add("fleet.spool_dropped_nonfatal", rt.spool.dropped_nonfatal());
                if rt.down || rt.dead {
                    down_now += 1;
                }
            }
            scrape.gauge_set("fleet.shards_down", down_now as f64);
            if let Some(ro) = rollout.as_ref() {
                // The stage gauge doubles as the rollout heartbeat: -1
                // while idle, the stage index while staging. The
                // `rollout-stall` absence rule pages when it goes stale.
                let stage = ro
                    .registry
                    .current_stage()
                    .map(|s| s as f64)
                    .unwrap_or(-1.0);
                scrape.gauge_set("fleet.rollout_stage", stage);
                scrape.counter_add("fleet.fleet_retrains", ro.fleet_retrains);
                scrape.counter_add("fleet.rollouts_started", ro.registry.started);
                scrape.counter_add("fleet.rollouts_promoted", ro.registry.promoted);
                scrape.counter_add("fleet.rollouts_rolled_back", ro.registry.rolled_back);
            }
            let snapshot = scrape.snapshot();
            dml_obs::with_history(history, |store| {
                store.scrape((week + 1) * WEEK_MS, &snapshot);
                if let Some(ro) = rollout.as_mut() {
                    for alert in ro.pending_alerts.drain(..) {
                        store.note_alert(alert);
                    }
                }
            });
        }

        // Per-warning provenance into the flight log (mirroring the
        // single-node drivers): each week's newly issued warnings, in
        // issue order, so `repro explain` resolves fleet warnings —
        // including which repository version issued them mid-rollout.
        if flight.is_enabled() {
            for (s, rt) in runtimes.iter().enumerate() {
                let from = flight_marks[s].min(rt.warnings.len());
                for w in &rt.warnings[from..] {
                    flight.record(w.issued_at.0, w.flight_event());
                }
                flight_marks[s] = rt.warnings.len();
            }
        }

        // 9. Rollout bookkeeping: remember which shards ended the week
        // down (their next week is fallback-served, not candidate
        // evidence) and drop stage transitions nobody scraped.
        if let Some(ro) = rollout.as_mut() {
            for (s, rt) in runtimes.iter().enumerate() {
                ro.down_last_week[s] = rt.down || rt.dead;
            }
            ro.pending_alerts.clear();
        }
    }
    let elapsed = serving_start.elapsed();

    // Score each shard over its serving-period stream.
    let serve_from = Timestamp(config.base_training_weeks * WEEK_MS);
    let serve_to = Timestamp(weeks * WEEK_MS);
    let mut reports = Vec::with_capacity(shards);
    let mut overall = Accuracy::default();
    for (s, rt) in runtimes.into_iter().enumerate() {
        let serving = window(&shard_events[s], serve_from, serve_to);
        // Close each linked warning's trace with a resolve span: did a
        // matching fatal land inside the validity interval? This mirrors
        // the scorer's hit test closely enough to label the chain.
        if tracer.enabled() {
            for w in &rt.warnings {
                if let Some(id) = tracer.warning_trace(&w.id.to_string()) {
                    let hit = serving.iter().find(|e| {
                        e.fatal
                            && e.time >= w.issued_at
                            && e.time <= w.deadline
                            && w.predicted.is_none_or(|t| t == e.type_id)
                    });
                    let (t_ms, outcome) = match hit {
                        Some(e) => (e.time.0, "hit"),
                        None => (w.deadline.0, "false_alarm"),
                    };
                    tracer.record(
                        dml_obs::TraceContext { id, sampled: true },
                        dml_obs::trace::stage::RESOLVE,
                        Some(s as u32),
                        t_ms,
                        0,
                        outcome,
                    );
                }
            }
        }
        let accuracy = score(&rt.warnings, serving);
        overall.true_warnings += accuracy.true_warnings;
        overall.false_warnings += accuracy.false_warnings;
        overall.covered_fatals += accuracy.covered_fatals;
        overall.missed_fatals += accuracy.missed_fatals;
        reports.push(ShardReport {
            shard: s,
            machines: shard_machines[s].len() as u64,
            events_served: rt.events_served,
            accuracy,
            warnings: rt.warnings,
            restarts: rt.restarts,
            cold_restarts: rt.cold_restarts,
            replayed_events: rt.replayed,
            fallback_events: rt.fallback_events,
            lost_events: rt.lost_events,
            lost_fatal_events: rt.lost_fatals,
            spool_dropped_nonfatal: rt.spool.dropped_nonfatal(),
            spool_overflow_fatals: rt.spool.overflow_fatals(),
            checkpoint_corruptions: rt.checkpoint_corruptions,
            final_repo_version: rt.repo.version(),
        });
    }

    let stage_latency_us: BTreeMap<String, dml_obs::Histogram> = tracer
        .stage_histograms()
        .map(|(stage, h)| (stage.to_string(), h.clone()))
        .collect();
    tracer.drain_into(flight);
    let trace = tracer.counters();

    let (rollout_enabled, rollout_counts, rollout_known_good) = match &rollout {
        Some(ro) => (
            true,
            [
                ro.fleet_retrains,
                ro.poisoned_retrains,
                ro.registry.started,
                ro.registry.promoted,
                ro.registry.rolled_back,
                ro.registry_corruptions,
            ],
            ro.registry.ring().versions(),
        ),
        None => (false, [0; 6], Vec::new()),
    };

    FleetReport {
        machines: shard_machines.iter().map(|m| m.len() as u64).sum(),
        serving_weeks: weeks - config.base_training_weeks,
        events_served: reports.iter().map(|r| r.events_served).sum(),
        elapsed,
        restarts: reports.iter().map(|r| r.restarts).sum(),
        cold_restarts: reports.iter().map(|r| r.cold_restarts).sum(),
        kills_injected,
        stalls_injected,
        corruptions_injected,
        lost_events: reports.iter().map(|r| r.lost_events).sum(),
        lost_fatal_events: reports.iter().map(|r| r.lost_fatal_events).sum(),
        fallback_events: reports.iter().map(|r| r.fallback_events).sum(),
        checkpoints_written,
        overlay_retrains,
        rollout_enabled,
        fleet_retrains: rollout_counts[0],
        poisoned_retrains: rollout_counts[1],
        rollouts_started: rollout_counts[2],
        rollouts_promoted: rollout_counts[3],
        rollouts_rolled_back: rollout_counts[4],
        registry_corruptions: rollout_counts[5],
        rollout_known_good,
        stage_latency_us,
        trace,
        shards: reports,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::EventTypeId;

    /// A learnable multi-machine trace: every machine emits the planted
    /// `{1, 2} → 100` chain several times a week, staggered per machine
    /// so the merged stream is time-diverse.
    fn fleet_log(machines: u32, weeks: i64) -> Vec<MachineEvent> {
        let mut out = Vec::new();
        for week in 0..weeks {
            let week_s = week * WEEK_MS / 1000;
            for g in 0..6i64 {
                for m in 0..machines {
                    let base = week_s + g * 86_000 + (m as i64) * 7;
                    let mk = |secs: i64, ty: u16, fatal: bool| {
                        MachineEvent::new(
                            m,
                            CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal),
                        )
                    };
                    out.push(mk(base, 1, false));
                    out.push(mk(base + 60, 2, false));
                    out.push(mk(base + 200, 100, true));
                }
            }
        }
        out.sort_by_key(|e| (e.event.time, e.machine, e.event.type_id));
        out
    }

    fn test_config(supervise: bool) -> FleetConfig {
        FleetConfig {
            shards: 3,
            base_training_weeks: 2,
            supervise,
            heartbeat: StdDuration::from_secs(10),
            ..FleetConfig::default()
        }
    }

    fn run(
        events: &[MachineEvent],
        weeks: i64,
        config: &FleetConfig,
        faults: &FaultSchedule,
    ) -> FleetReport {
        let mut flight = dml_obs::FlightRecorder::disabled();
        run_fleet(events, weeks, config, faults, &mut flight)
    }

    #[test]
    fn supervised_and_unsupervised_agree_on_clean_trace() {
        let events = fleet_log(12, 5);
        let on = run(&events, 5, &test_config(true), &FaultSchedule::new());
        let off = run(&events, 5, &test_config(false), &FaultSchedule::new());
        assert_eq!(on.restarts, 0);
        assert_eq!(off.restarts, 0);
        assert_eq!(on.shards.len(), off.shards.len());
        for (a, b) in on.shards.iter().zip(off.shards.iter()) {
            assert_eq!(a.warnings, b.warnings, "shard {} diverged", a.shard);
            assert_eq!(a.accuracy, b.accuracy);
        }
        assert_eq!(on.overall, off.overall);
        assert!(on.overall.recall() > 0.8, "recall {}", on.overall.recall());
    }

    #[test]
    fn killed_shard_sheds_to_fallback_and_restarts_from_checkpoint() {
        let events = fleet_log(12, 6);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        let report = run(&events, 6, &test_config(true), &faults);
        let shard = &report.shards[1];
        assert_eq!(report.kills_injected, 1);
        assert_eq!(shard.restarts, 1);
        assert_eq!(shard.cold_restarts, 0, "checkpoint was intact");
        assert!(shard.fallback_events > 0, "down block must be shed");
        assert!(shard.replayed_events > 0, "spool must replay at restart");
        assert_eq!(report.lost_events, 0);
        assert_eq!(report.lost_fatal_events, 0, "supervision never loses a fatal");
        // Continuity: every shard still served its whole stream.
        for s in &report.shards {
            let expected: u64 = events
                .iter()
                .filter(|e| {
                    (e.machine as usize) % 3 == s.shard && e.event.time.0 >= 2 * WEEK_MS
                })
                .count() as u64;
            assert_eq!(s.events_served, expected, "shard {}", s.shard);
        }
    }

    #[test]
    fn chaos_recall_stays_close_to_clean_run() {
        let events = fleet_log(12, 6);
        let clean = run(&events, 6, &test_config(true), &FaultSchedule::new());
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        faults.insert((4, 0), FleetFault::CorruptCheckpoint);
        let chaos = run(&events, 6, &test_config(true), &faults);
        assert_eq!(chaos.lost_fatal_events, 0);
        let delta = (clean.overall.recall() - chaos.overall.recall()).abs();
        assert!(delta <= 0.05, "recall delta {delta} too large");
    }

    #[test]
    fn corrupt_checkpoint_degrades_to_cold_restart() {
        let events = fleet_log(12, 6);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 2), FleetFault::CorruptCheckpoint);
        let report = run(&events, 6, &test_config(true), &faults);
        let shard = &report.shards[2];
        assert_eq!(report.corruptions_injected, 1);
        assert_eq!(shard.restarts, 1);
        assert_eq!(shard.cold_restarts, 1, "must not trust a corrupt checkpoint");
        assert_eq!(shard.checkpoint_corruptions, 1);
        assert!(shard.replayed_events > 0, "spool still replays after cold start");
        assert_eq!(report.lost_fatal_events, 0);
    }

    #[test]
    fn stall_past_heartbeat_is_treated_as_down() {
        let events = fleet_log(6, 5);
        let mut config = test_config(true);
        config.heartbeat = StdDuration::from_millis(250);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 0), FleetFault::Stall(StdDuration::from_millis(1500)));
        let report = run(&events, 5, &config, &faults);
        assert_eq!(report.stalls_injected, 1);
        assert_eq!(report.shards[0].restarts, 1);
        assert!(report.shards[0].fallback_events > 0);
        assert_eq!(report.lost_fatal_events, 0);
    }

    #[test]
    fn unsupervised_kill_loses_the_shard_for_good() {
        let events = fleet_log(12, 6);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        let report = run(&events, 6, &test_config(false), &faults);
        let shard = &report.shards[1];
        assert_eq!(shard.restarts, 0);
        assert_eq!(shard.fallback_events, 0);
        assert!(report.lost_events > 0);
        assert!(report.lost_fatal_events > 0, "no supervision: fatals are lost");
        assert!(
            report.overall.missed_fatals > 0,
            "lost fatals must show up as misses"
        );
    }

    #[test]
    fn disk_checkpoints_round_trip_through_restart() {
        let dir = std::env::temp_dir().join(format!(
            "dml-fleet-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let events = fleet_log(12, 6);
        let mut config = test_config(true);
        config.checkpoint_dir = Some(dir.clone());
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        let report = run(&events, 6, &config, &faults);
        assert_eq!(report.shards[1].restarts, 1);
        assert_eq!(report.shards[1].cold_restarts, 0);
        assert_eq!(report.lost_fatal_events, 0);
        assert!(dir.join("shard-1.ckpt").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overlay_retrain_changes_repo_version_without_losing_recall() {
        let events = fleet_log(12, 6);
        let mut config = test_config(true);
        config.overlay_retrain_weeks = 1;
        config.overlay_window_weeks = 2;
        let report = run(&events, 6, &config, &FaultSchedule::new());
        assert!(report.overlay_retrains > 0);
        for s in &report.shards {
            assert_ne!(s.final_repo_version, 1, "shard {} never swapped", s.shard);
        }
        assert!(report.overall.recall() > 0.8, "recall {}", report.overall.recall());
    }

    #[test]
    fn spool_sheds_oldest_nonfatal_first_and_never_a_fatal() {
        let mut spool = Spool::new(4);
        let ev = |secs: i64, fatal: bool| {
            CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(1), fatal)
        };
        spool.push(ev(0, false));
        spool.push(ev(1, true));
        spool.push(ev(2, false));
        spool.push(ev(3, true));
        // Full. The next push evicts the oldest non-fatal (t=0).
        spool.push(ev(4, true));
        assert_eq!(spool.len(), 4);
        assert_eq!(spool.dropped_nonfatal(), 1);
        assert!(spool.events().iter().all(|e| e.time.0 != 0));
        // Evict the remaining non-fatal (t=2), then overflow with fatals.
        spool.push(ev(5, true));
        assert_eq!(spool.dropped_nonfatal(), 2);
        spool.push(ev(6, true));
        assert_eq!(spool.overflow_fatals(), 1);
        assert_eq!(spool.len(), 5, "fatal admitted past capacity");
        let fatals = spool.events().iter().filter(|e| e.fatal).count();
        assert_eq!(fatals, 5, "every fatal ever pushed is still buffered");
    }

    #[test]
    fn tracing_off_is_bit_identical_and_span_free() {
        let events = fleet_log(12, 6);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        let base = run(&events, 6, &test_config(true), &faults);
        let mut config = test_config(true);
        config.trace = dml_obs::TraceConfig::disabled();
        let off = run(&events, 6, &config, &faults);
        assert_eq!(off.trace, dml_obs::TraceCounters::default());
        assert!(off.stage_latency_us.is_empty());
        assert_eq!(off.overall, base.overall);
        for (a, b) in off.shards.iter().zip(base.shards.iter()) {
            assert_eq!(a.warnings, b.warnings, "shard {} diverged", a.shard);
        }
    }

    #[test]
    fn traced_chaos_run_yields_complete_waterfalls() {
        let events = fleet_log(12, 6);
        let mut config = test_config(true);
        config.trace = dml_obs::TraceConfig::every(1);
        let mut faults = FaultSchedule::new();
        faults.insert((3, 1), FleetFault::Kill);
        let path = std::env::temp_dir().join(format!(
            "dml-fleet-trace-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut flight =
            dml_obs::FlightRecorder::create(&path, dml_obs::FlightConfig::default()).unwrap();
        let report = run_fleet(&events, 6, &config, &faults, &mut flight);
        flight.flush();
        assert!(report.trace.spans_recorded > 0);
        assert!(report.trace.spans_emitted > 0);
        assert!(report.stage_latency_us.contains_key("predict"));

        let (records, skipped) = dml_obs::read_flight_log(&path).unwrap();
        assert_eq!(skipped, 0, "every line parses");
        let mut spans: BTreeMap<String, Vec<(String, String)>> = BTreeMap::new();
        for r in &records {
            if let dml_obs::FlightEvent::TraceSpan {
                trace,
                stage,
                outcome,
                ..
            } = &r.event
            {
                spans
                    .entry(trace.clone())
                    .or_default()
                    .push((stage.clone(), outcome.clone()));
            }
        }
        let has = |t: &[(String, String)], stage: &str| t.iter().any(|(s, _)| s == stage);
        // The acceptance chain: one event, ingested and shed to the
        // fallback across the killed shard's restart, that still produced
        // a warning and had it resolved.
        let crossing = spans.values().any(|t| {
            t.iter().any(|(s, o)| s == "dispatch" && o == "fallback")
                && has(t, "ingest")
                && has(t, "predict")
                && has(t, "warn")
                && has(t, "resolve")
        });
        assert!(crossing, "no ingest→resolve chain crossed the restart");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_exports_fleet_metric_family() {
        let events = fleet_log(6, 4);
        let mut config = test_config(true);
        config.base_training_weeks = 2;
        let report = run(&events, 4, &config, &FaultSchedule::new());
        let mut registry = dml_obs::Registry::new();
        registry.collect(&report);
        let text = dml_obs::render_openmetrics(&registry.snapshot());
        for name in [
            "fleet_shards",
            "fleet_machines",
            "fleet_events_served",
            "fleet_lost_fatal_events",
            "fleet_recall",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        // Per-shard breakdowns ride the same families as labeled series.
        for labeled in [
            "dml_fleet_events_served_total{shard=\"0\"}",
            "dml_fleet_events_served_total{shard=\"2\"}",
            "dml_fleet_recall{shard=\"1\"}",
        ] {
            assert!(text.contains(labeled), "missing {labeled} in:\n{text}");
        }
    }

    /// Canary → fleet-wide in two stages, one-week dwell: retrain at
    /// week 4, canary judged at 5, promoted at 6 (`weeks = 7`).
    fn rollout_config() -> crate::registry::RolloutConfig {
        crate::registry::RolloutConfig {
            retrain_weeks: 2,
            window_weeks: 2,
            stage_fractions: Vec::new(),
            dwell_weeks: 1,
            ..crate::registry::RolloutConfig::default()
        }
    }

    #[test]
    fn healthy_rollout_promotes_the_candidate_fleet_wide() {
        let events = fleet_log(12, 7);
        let mut config = test_config(true);
        config.rollout = Some(rollout_config());
        let report = run(&events, 7, &config, &FaultSchedule::new());
        assert!(report.rollout_enabled);
        assert_eq!(report.fleet_retrains, 1);
        assert_eq!(report.rollouts_started, 1);
        assert_eq!(report.rollouts_promoted, 1);
        assert_eq!(report.rollouts_rolled_back, 0);
        assert_eq!(report.rollout_known_good, vec![1, 2]);
        for s in &report.shards {
            assert_eq!(s.final_repo_version, 2, "shard {} not promoted", s.shard);
        }
        assert_eq!(report.lost_fatal_events, 0);
        assert!(report.overall.recall() > 0.8, "recall {}", report.overall.recall());
    }

    #[test]
    fn poisoned_retrain_is_caught_at_canary_and_rolled_back() {
        let events = fleet_log(12, 6);
        let mut config = test_config(true);
        let mut rc = rollout_config();
        rc.chaos.poison_retrain_weeks.insert(4);
        config.rollout = Some(rc);
        let report = run(&events, 6, &config, &FaultSchedule::new());
        assert_eq!(report.poisoned_retrains, 1);
        assert_eq!(report.rollouts_started, 1);
        assert_eq!(report.rollouts_rolled_back, 1);
        assert_eq!(report.rollouts_promoted, 0);
        assert_eq!(report.rollout_known_good, vec![1], "garbage never enters the ring");
        for s in &report.shards {
            assert_eq!(s.final_repo_version, 1, "shard {} off known-good", s.shard);
        }
        // Post-rollback provenance: the canary's warnings after the
        // rollback week name the known-good version, not the candidate.
        let canary = &report.shards[0];
        let post: Vec<_> = canary
            .warnings
            .iter()
            .filter(|w| w.issued_at.0 >= 5 * WEEK_MS)
            .collect();
        assert!(!post.is_empty(), "canary kept serving after rollback");
        assert!(post.iter().all(|w| w.id.repo_version == 1));
        // Blast radius: shards outside the canary stage never saw the
        // candidate — bit-identical to a registry-free run.
        let baseline = run(&events, 6, &test_config(true), &FaultSchedule::new());
        for s in [1usize, 2] {
            assert_eq!(
                report.shards[s].warnings, baseline.shards[s].warnings,
                "non-canary shard {s} was perturbed by the rollout"
            );
        }
        assert_eq!(report.lost_fatal_events, 0);
    }

    #[test]
    fn pinned_shard_never_receives_a_staged_candidate() {
        let events = fleet_log(12, 7);
        let mut config = test_config(true);
        let mut rc = rollout_config();
        rc.pins.insert(1, 1);
        config.rollout = Some(rc);
        let report = run(&events, 7, &config, &FaultSchedule::new());
        assert_eq!(report.rollouts_promoted, 1);
        assert_eq!(report.shards[0].final_repo_version, 2);
        assert_eq!(report.shards[1].final_repo_version, 1, "pinned shard swapped");
        assert_eq!(report.shards[2].final_repo_version, 2);
    }

    #[test]
    fn rollout_with_no_due_retrain_is_bit_identical_to_none() {
        let events = fleet_log(12, 6);
        let off = run(&events, 6, &test_config(true), &FaultSchedule::new());
        let mut config = test_config(true);
        let mut rc = rollout_config();
        rc.retrain_weeks = 100; // never due inside the run
        config.rollout = Some(rc);
        let idle = run(&events, 6, &config, &FaultSchedule::new());
        assert!(idle.rollout_enabled);
        assert_eq!(idle.fleet_retrains, 0);
        assert_eq!(idle.overall, off.overall);
        for (a, b) in idle.shards.iter().zip(off.shards.iter()) {
            assert_eq!(a.warnings, b.warnings, "shard {} diverged", a.shard);
            assert_eq!(a.final_repo_version, b.final_repo_version);
        }
    }

    #[test]
    fn rollout_scrapes_stage_gauge_and_stage_alerts_into_history() {
        let events = fleet_log(12, 7);
        let mut config = test_config(true);
        config.rollout = Some(rollout_config());
        config.history = Some(dml_obs::shared_history(dml_obs::TimeSeriesStore::new()));
        let report = run(&events, 7, &config, &FaultSchedule::new());
        assert_eq!(report.rollouts_promoted, 1);
        let history = config.history.clone().unwrap();
        dml_obs::with_history(&history, |store| {
            let stage = store
                .series("fleet.rollout_stage")
                .expect("stage gauge scraped");
            let points: Vec<(i64, f64)> = stage.points().collect();
            assert!(points.iter().any(|p| p.1 >= 0.0), "staging weeks recorded");
            assert!(points.iter().any(|p| p.1 < 0.0), "idle weeks recorded");
            let rules: Vec<&str> = store.alerts().iter().map(|a| a.rule.as_str()).collect();
            assert!(rules.contains(&"rollout-stage"), "stage transitions: {rules:?}");
            let resolved = store
                .alerts()
                .iter()
                .any(|a| a.rule == "rollout-stage" && a.state == "resolved");
            assert!(resolved, "promotion must resolve the stage timeline");
        });
    }
}
