//! The association-rule base learner.
//!
//! "On the training set, for each fatal event, we identify the set of
//! non-fatal events preceding it within the rule generation window `W_P`
//! … We then apply the standard association rule algorithm to build rule
//! models for event sets that are above the minimum support and
//! confidence." (Section 4.1.)

use super::BaseLearner;
use crate::config::FrameworkConfig;
use crate::rules::{AssociationRule, Rule, RuleKind};
use apriori::{mine_class_rules, ClassTransaction};
use raslog::{CleanEvent, EventTypeId};
use std::collections::VecDeque;

/// Mines `{non-fatal precursors} → fatal` rules with Apriori.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssociationLearner;

/// Builds one transaction per fatal event: the distinct non-fatal types
/// observed within `window` before it (single forward sweep).
pub(super) fn build_transactions(
    events: &[CleanEvent],
    window: raslog::Duration,
) -> Vec<ClassTransaction<EventTypeId, EventTypeId>> {
    let mut txs = Vec::new();
    let mut recent: VecDeque<(raslog::Timestamp, EventTypeId)> = VecDeque::new();
    for ev in events {
        while let Some(&(t, _)) = recent.front() {
            if ev.time - t > window {
                recent.pop_front();
            } else {
                break;
            }
        }
        if ev.fatal {
            let mut items: Vec<EventTypeId> = recent.iter().map(|&(_, ty)| ty).collect();
            items.sort_unstable();
            items.dedup();
            txs.push(ClassTransaction::new(items, ev.type_id));
        } else {
            recent.push_back((ev.time, ev.type_id));
        }
    }
    txs
}

impl BaseLearner for AssociationLearner {
    fn name(&self) -> &'static str {
        "association rule"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Association
    }

    fn learn(&self, events: &[CleanEvent], config: &FrameworkConfig) -> Vec<Rule> {
        let txs = build_transactions(events, config.window);
        if txs.is_empty() {
            return Vec::new();
        }
        mine_class_rules(
            &txs,
            config.min_support,
            config.min_confidence,
            config.max_antecedent,
        )
        .into_iter()
        .map(|r| {
            Rule::Association(AssociationRule {
                antecedent: r.antecedent,
                fatal: r.class,
                support: r.support,
                confidence: r.confidence,
            })
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{Duration, Timestamp};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    /// Planted pattern: types {1, 2} precede fatal 100 by < 300 s.
    fn planted_log(repeats: usize) -> Vec<CleanEvent> {
        let mut events = Vec::new();
        for i in 0..repeats {
            let base = i as i64 * 10_000;
            events.push(ev(base, 1, false));
            events.push(ev(base + 50, 2, false));
            events.push(ev(base + 200, 100, true));
            // An unrelated fatal with no precursors.
            events.push(ev(base + 5_000, 101, true));
        }
        events
    }

    #[test]
    fn transactions_capture_window_contents() {
        let txs = build_transactions(&planted_log(3), Duration::from_secs(300));
        assert_eq!(txs.len(), 6); // two fatals per repeat
        let cued: Vec<_> = txs.iter().filter(|t| t.class == EventTypeId(100)).collect();
        for t in &cued {
            assert_eq!(t.items, vec![EventTypeId(1), EventTypeId(2)]);
        }
        let uncued: Vec<_> = txs.iter().filter(|t| t.class == EventTypeId(101)).collect();
        for t in &uncued {
            assert!(t.items.is_empty(), "no precursors expected: {:?}", t.items);
        }
    }

    #[test]
    fn learns_planted_rule() {
        let rules = AssociationLearner.learn(&planted_log(20), &FrameworkConfig::default());
        let hit = rules.iter().find_map(|r| match r {
            Rule::Association(a)
                if a.antecedent == vec![EventTypeId(1), EventTypeId(2)]
                    && a.fatal == EventTypeId(100) =>
            {
                Some(a)
            }
            _ => None,
        });
        let a = hit.expect("planted rule not mined");
        assert!(a.confidence > 0.99, "confidence {}", a.confidence);
        assert!((a.support - 0.5).abs() < 1e-9, "support {}", a.support);
        // No rule should target the precursor-less fatal.
        assert!(rules.iter().all(|r| match r {
            Rule::Association(a) => a.fatal != EventTypeId(101),
            _ => true,
        }));
    }

    #[test]
    fn window_excludes_stale_precursors() {
        // Precursor 400 s before the fatal is outside W_P = 300 s.
        let events = vec![ev(0, 1, false), ev(400, 100, true)];
        let txs = build_transactions(&events, Duration::from_secs(300));
        assert_eq!(txs.len(), 1);
        assert!(txs[0].items.is_empty());
        // With a 2-hour window it is included (Fig. 13's tradeoff).
        let txs = build_transactions(&events, Duration::from_hours(2));
        assert_eq!(txs[0].items, vec![EventTypeId(1)]);
    }

    #[test]
    fn empty_input_learns_nothing() {
        assert!(AssociationLearner
            .learn(&[], &FrameworkConfig::default())
            .is_empty());
        // All-non-fatal input produces no transactions either.
        let events = vec![ev(0, 1, false), ev(1, 2, false)];
        assert!(AssociationLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
    }

    #[test]
    fn fatal_events_are_not_antecedents() {
        // A fatal preceding another fatal must not appear as an antecedent.
        let mut events = Vec::new();
        for i in 0..30 {
            let base = i as i64 * 10_000;
            events.push(ev(base, 50, true));
            events.push(ev(base + 100, 100, true));
        }
        let rules = AssociationLearner.learn(&events, &FrameworkConfig::default());
        for r in &rules {
            if let Rule::Association(a) = r {
                assert!(!a.antecedent.contains(&EventTypeId(50)));
            }
        }
    }
}
