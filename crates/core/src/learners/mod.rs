//! The base learners.
//!
//! Each base learner turns a training window of preprocessed events into
//! candidate rules of one [`RuleKind`]. "Other predictive methods can be
//! easily incorporated" — implement [`BaseLearner`] and hand the learner to
//! the meta-learner.

mod association;
mod distribution;
mod location;
mod statistical;

pub use association::AssociationLearner;
pub use distribution::DistributionLearner;
pub use location::LocationLearner;
pub use statistical::StatisticalLearner;

use crate::config::FrameworkConfig;
use crate::rules::{Rule, RuleKind};
use raslog::CleanEvent;

/// A predictive method pluggable into the meta-learner.
pub trait BaseLearner: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;

    /// The rule kind this learner produces.
    fn kind(&self) -> RuleKind;

    /// Learns candidate rules from a time-sorted training window.
    fn learn(&self, events: &[CleanEvent], config: &FrameworkConfig) -> Vec<Rule>;
}

/// Exposes the association learner's transaction construction for the
/// benchmark harness (one transaction per fatal event: the distinct
/// non-fatal types within `window` before it).
pub fn transactions_for_bench(
    events: &[CleanEvent],
    window: raslog::Duration,
) -> Vec<apriori::ClassTransaction<raslog::EventTypeId, raslog::EventTypeId>> {
    association::build_transactions(events, window)
}

/// The paper's three base learners, in mixture-of-experts order.
pub fn standard_learners() -> Vec<Box<dyn BaseLearner>> {
    vec![
        Box::new(AssociationLearner),
        Box::new(StatisticalLearner),
        Box::new(DistributionLearner),
    ]
}

/// The extended ensemble: the paper's three learners plus the
/// location-recurrence extension (association → statistical → location →
/// distribution).
pub fn extended_learners() -> Vec<Box<dyn BaseLearner>> {
    vec![
        Box::new(AssociationLearner),
        Box::new(StatisticalLearner),
        Box::new(LocationLearner),
        Box::new(DistributionLearner),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_learners_in_ensemble_order() {
        let learners = standard_learners();
        let kinds: Vec<RuleKind> = learners.iter().map(|l| l.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                RuleKind::Association,
                RuleKind::Statistical,
                RuleKind::Distribution
            ]
        );
    }
}
