//! The location-recurrence base learner (extension).
//!
//! The paper's framework is explicitly open: "we believe other predictive
//! methods can be easily incorporated". This learner adds a *spatial*
//! expert to the ensemble: failing hardware keeps failing until it is
//! serviced, so `k` fatals on the same midplane within `W_P` predict
//! another failure. It is not part of [`standard_learners`] (which mirrors
//! the paper's three) — use [`extended_learners`] or
//! [`MetaLearner::with_learners`].
//!
//! [`standard_learners`]: super::standard_learners
//! [`extended_learners`]: super::extended_learners
//! [`MetaLearner::with_learners`]: crate::meta::MetaLearner::with_learners

use super::BaseLearner;
use crate::config::FrameworkConfig;
use crate::rules::{LocationRule, Rule, RuleKind};
use raslog::{CleanEvent, Timestamp};

/// Minimum trigger occurrences before a probability estimate is trusted.
const MIN_SAMPLES: usize = 5;

/// Learns "`k` same-midplane failures within `W_P` ⇒ another failure"
/// rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocationLearner;

/// For each fatal event with a known midplane: `(same-midplane count in
/// the closed window ending at it, whether any fatal follows within the
/// window)`.
fn midplane_window_counts(events: &[CleanEvent], window: raslog::Duration) -> Vec<(usize, bool)> {
    let fatals: Vec<(Timestamp, Option<(u8, u8)>)> = events
        .iter()
        .filter(|e| e.fatal)
        .map(|e| (e.time, e.location.midplane()))
        .collect();
    let mut out = Vec::new();
    let mut lo = 0usize;
    for (i, &(t, mp)) in fatals.iter().enumerate() {
        while fatals[lo].0 < t - window {
            lo += 1;
        }
        let Some(mp) = mp else { continue };
        let count = fatals[lo..=i]
            .iter()
            .filter(|&&(_, m)| m == Some(mp))
            .count();
        let followed = fatals
            .get(i + 1)
            .map(|&(next, _)| next - t <= window)
            .unwrap_or(false);
        out.push((count, followed));
    }
    out
}

impl BaseLearner for LocationLearner {
    fn name(&self) -> &'static str {
        "location recurrence"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Location
    }

    fn learn(&self, events: &[CleanEvent], config: &FrameworkConfig) -> Vec<Rule> {
        let samples = midplane_window_counts(events, config.window);
        let mut rules = Vec::new();
        for k in 2..=config.stat_max_k {
            let triggered: Vec<bool> = samples
                .iter()
                .filter(|&&(count, _)| count >= k)
                .map(|&(_, followed)| followed)
                .collect();
            if triggered.len() < MIN_SAMPLES {
                break;
            }
            let p = triggered.iter().filter(|&&f| f).count() as f64 / triggered.len() as f64;
            if p >= config.stat_threshold {
                rules.push(Rule::Location(LocationRule { k, probability: p }));
            }
        }
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{Duration, EventTypeId, Location};

    fn fatal_at(secs: i64, midplane: u8) -> CleanEvent {
        CleanEvent {
            time: Timestamp::from_secs(secs),
            type_id: EventTypeId(0),
            location: Location::chip(0, midplane, 3, 5, 0),
            job_id: None,
            fatal: true,
        }
    }

    #[test]
    fn counts_are_per_midplane() {
        // Midplane 0 bursts; midplane 1 sees isolated fatals interleaved.
        let events = vec![
            fatal_at(0, 0),
            fatal_at(50, 1),
            fatal_at(100, 0),
            fatal_at(150, 0),
        ];
        let counts = midplane_window_counts(&events, Duration::from_secs(300));
        assert_eq!(counts, vec![(1, true), (1, true), (2, true), (3, false)]);
    }

    #[test]
    fn learns_same_midplane_recurrence() {
        // Midplane 0 fails in runs of 6 (50 s apart): of the five "≥2
        // seen" positions per run, four are followed — probability 0.8.
        let mut events = Vec::new();
        for i in 0..30 {
            let base = i as i64 * 100_000;
            for j in 0..6 {
                events.push(fatal_at(base + j * 50, 0));
            }
        }
        let rules = LocationLearner.learn(&events, &FrameworkConfig::default());
        assert!(!rules.is_empty());
        for r in &rules {
            let Rule::Location(l) = r else {
                panic!("wrong kind")
            };
            assert!(l.probability >= 0.8);
            assert!(l.k >= 2);
        }
    }

    #[test]
    fn scattered_failures_learn_nothing() {
        let events: Vec<CleanEvent> = (0..60)
            .map(|i| fatal_at(i * 50_000, (i % 2) as u8))
            .collect();
        assert!(LocationLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
    }

    #[test]
    fn system_located_fatals_are_skipped() {
        // Fatals with no midplane (Location::System) contribute no samples.
        let events: Vec<CleanEvent> = (0..20)
            .map(|i| CleanEvent::new(Timestamp::from_secs(i * 10), EventTypeId(0), true))
            .collect();
        assert!(LocationLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
    }
}
