//! The probability-distribution base learner.
//!
//! "…calculates inter-arrival times between adjacent fatal events and uses
//! maximum likelihood estimation to fit a mathematical model to these
//! data. Distributions like Weibull, exponential, and log-normal are
//! examined … this base method will trigger a warning if the probability
//! is larger than a user-defined threshold, or equally saying, when the
//! elapsed time since the last failure is longer than some threshold."
//! (Section 4.1, with the SDSC example
//! `F(t) = 1 − e^{−(t/19984.8)^0.507936}` and threshold 0.60.)

use super::BaseLearner;
use crate::config::FrameworkConfig;
use crate::rules::{DistributionRule, Rule, RuleKind};
use raslog::store::clean::fatal_interarrivals_secs;
use raslog::CleanEvent;

/// Minimum number of gaps before a fit is attempted.
const MIN_GAPS: usize = 8;

/// Fits the long-term failure inter-arrival distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct DistributionLearner;

impl BaseLearner for DistributionLearner {
    fn name(&self) -> &'static str {
        "probability distribution"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Distribution
    }

    fn learn(&self, events: &[CleanEvent], config: &FrameworkConfig) -> Vec<Rule> {
        // Long-term behaviour only: gaps inside the rule-generation window
        // are short-term correlations and belong to the statistical
        // learner ("this method … intends to utilize long-term failure
        // behavior").
        let window_secs = config.window.as_secs_f64();
        let gaps: Vec<f64> = fatal_interarrivals_secs(events)
            .into_iter()
            .filter(|&g| g > window_secs)
            .collect();
        if gaps.len() < MIN_GAPS {
            return Vec::new();
        }
        match dml_stats::fit_best(&gaps) {
            Some(best) => vec![Rule::Distribution(DistributionRule {
                model: best.model,
                threshold: config.dist_threshold,
                expire_quantile: config.dist_expire_quantile,
            })],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_stats::{ContinuousDistribution, DistributionFamily, FittedModel};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use raslog::{EventTypeId, Timestamp};

    fn weibull_fatal_log(shape: f64, scale: f64, n: usize, seed: u64) -> Vec<CleanEvent> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let mut events = Vec::new();
        for _ in 0..n {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += scale * (-(u.ln())).powf(1.0 / shape);
            events.push(CleanEvent::new(
                Timestamp::from_secs(t as i64),
                EventTypeId(0),
                true,
            ));
        }
        events
    }

    #[test]
    fn fits_weibull_body_and_recovers_parameters() {
        // Wear-out body: shape 1.5, scale 42 000 s — almost no gap falls
        // below the 300 s window, so truncation bias is negligible.
        let events = weibull_fatal_log(1.5, 42_000.0, 3_000, 1);
        let rules = DistributionLearner.learn(&events, &FrameworkConfig::default());
        assert_eq!(rules.len(), 1);
        let Rule::Distribution(d) = &rules[0] else {
            panic!("wrong kind")
        };
        assert_eq!(d.model.family(), DistributionFamily::Weibull);
        let FittedModel::Weibull(w) = d.model else {
            unreachable!()
        };
        assert!((w.shape - 1.5).abs() < 0.1, "shape {}", w.shape);
        assert!(
            (w.scale - 42_000.0).abs() / 42_000.0 < 0.1,
            "scale {}",
            w.scale
        );
        // Trigger point is the 60th percentile of the fit.
        let f = d.model.cdf(d.trigger_elapsed().as_secs_f64());
        assert!((f - 0.6).abs() < 0.01, "F(trigger) = {f}");
    }

    #[test]
    fn short_gaps_are_excluded_from_the_fit() {
        // Interleave burst pairs (gap 50 s) with the body; the fitted body
        // must stay (almost) unchanged because sub-window gaps are the
        // statistical learner's domain.
        let body = weibull_fatal_log(1.5, 42_000.0, 1_500, 2);
        let mut with_bursts = Vec::new();
        for e in &body {
            with_bursts.push(*e);
            with_bursts.push(CleanEvent::new(
                raslog::Timestamp(e.time.millis() + 50_000),
                EventTypeId(0),
                true,
            ));
        }
        let clean_rules = DistributionLearner.learn(&body, &FrameworkConfig::default());
        let burst_rules = DistributionLearner.learn(&with_bursts, &FrameworkConfig::default());
        let Rule::Distribution(a) = &clean_rules[0] else {
            unreachable!()
        };
        let Rule::Distribution(b) = &burst_rules[0] else {
            unreachable!()
        };
        let (FittedModel::Weibull(wa), FittedModel::Weibull(wb)) = (a.model, b.model) else {
            panic!("expected Weibull fits, got {:?} / {:?}", a.model, b.model)
        };
        assert!(
            (wa.shape - wb.shape).abs() < 0.2,
            "{} vs {}",
            wa.shape,
            wb.shape
        );
        assert!((wa.scale - wb.scale).abs() / wa.scale < 0.15);
    }

    #[test]
    fn too_few_gaps_learns_nothing() {
        let events = weibull_fatal_log(0.51, 20_000.0, 5, 2);
        assert!(DistributionLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
        assert!(DistributionLearner
            .learn(&[], &FrameworkConfig::default())
            .is_empty());
    }

    #[test]
    fn nonfatal_events_do_not_contribute_gaps() {
        let mut events = weibull_fatal_log(1.0, 1000.0, 100, 3);
        // Interleave non-fatal chatter.
        for i in 0..500 {
            events.push(CleanEvent::new(
                Timestamp::from_secs(i * 13),
                EventTypeId(9),
                false,
            ));
        }
        events.sort_by_key(|e| e.time);
        let with_noise = DistributionLearner.learn(&events, &FrameworkConfig::default());
        let clean = DistributionLearner.learn(
            &weibull_fatal_log(1.0, 1000.0, 100, 3),
            &FrameworkConfig::default(),
        );
        assert_eq!(with_noise, clean);
    }
}
