//! The statistical-rule base learner.
//!
//! "On the training set, we calculate the probability of `k` failures
//! occurred within the rule generation window `W_P`. If the probability is
//! larger than a user-defined threshold, then a statistic rule is
//! generated, along with its probability value. … we have discovered that
//! for both logs, if four failures occur within 300 seconds, then the
//! probability of another failure is 99 %." (Section 4.1.)

use super::BaseLearner;
use crate::config::FrameworkConfig;
use crate::rules::{Rule, RuleKind, StatisticalRule};
use raslog::{CleanEvent, Timestamp};

/// Minimum trigger occurrences before a probability estimate is trusted.
const MIN_SAMPLES: usize = 5;

/// Learns "`k` failures within `W_P` ⇒ another failure" rules.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatisticalLearner;

/// For each fatal event, `(count of fatals in the closed window ending at
/// it, whether another fatal follows within the window)`.
pub(crate) fn fatal_window_counts(
    events: &[CleanEvent],
    window: raslog::Duration,
) -> Vec<(usize, bool)> {
    let fatal_times: Vec<Timestamp> = events.iter().filter(|e| e.fatal).map(|e| e.time).collect();
    let mut out = Vec::with_capacity(fatal_times.len());
    let mut lo = 0usize;
    for (i, &t) in fatal_times.iter().enumerate() {
        while fatal_times[lo] < t - window {
            lo += 1;
        }
        let count = i - lo + 1; // fatals in [t - window, t], current included
        let followed = fatal_times
            .get(i + 1)
            .map(|&next| next - t <= window)
            .unwrap_or(false);
        out.push((count, followed));
    }
    out
}

impl BaseLearner for StatisticalLearner {
    fn name(&self) -> &'static str {
        "statistical rule"
    }

    fn kind(&self) -> RuleKind {
        RuleKind::Statistical
    }

    fn learn(&self, events: &[CleanEvent], config: &FrameworkConfig) -> Vec<Rule> {
        let samples = fatal_window_counts(events, config.window);
        let mut rules = Vec::new();
        for k in 1..=config.stat_max_k {
            let triggered: Vec<bool> = samples
                .iter()
                .filter(|&&(count, _)| count >= k)
                .map(|&(_, followed)| followed)
                .collect();
            if triggered.len() < MIN_SAMPLES {
                break; // higher k only gets rarer
            }
            let p = triggered.iter().filter(|&&f| f).count() as f64 / triggered.len() as f64;
            if p >= config.stat_threshold {
                rules.push(Rule::Statistical(StatisticalRule { k, probability: p }));
            }
        }
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{Duration, EventTypeId};

    fn fatal(secs: i64) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(0), true)
    }

    #[test]
    fn window_counts_basics() {
        // Burst of 3 fatals 100 s apart, then an isolated one.
        let events = vec![fatal(0), fatal(100), fatal(200), fatal(10_000)];
        let counts = fatal_window_counts(&events, Duration::from_secs(300));
        assert_eq!(counts, vec![(1, true), (2, true), (3, false), (1, false)]);
    }

    #[test]
    fn learns_rule_from_deep_bursts() {
        // Bursts of 6 fatals 50 s apart: once 3 are seen within the window
        // another always follows; isolated fatals dilute low-k rules.
        let mut events = Vec::new();
        for i in 0..30 {
            let base = i as i64 * 100_000;
            for j in 0..6 {
                events.push(fatal(base + j * 50));
            }
            events.push(fatal(base + 50_000)); // isolated
        }
        let config = FrameworkConfig::default();
        let rules = StatisticalLearner.learn(&events, &config);
        assert!(!rules.is_empty(), "no statistical rules learned");
        for r in &rules {
            let Rule::Statistical(s) = r else {
                panic!("wrong kind")
            };
            assert!(s.probability >= config.stat_threshold);
            assert!(s.k >= 2, "k=1 cannot clear 0.8 here (k {})", s.k);
        }
        // k = 2 rule: every burst position 2..6 sees a follower except the
        // last → probability 4/5 = 0.8 ≥ threshold.
        assert!(rules
            .iter()
            .any(|r| matches!(r, Rule::Statistical(s) if s.k == 2)));
    }

    #[test]
    fn no_rules_from_isolated_failures() {
        let events: Vec<CleanEvent> = (0..50).map(|i| fatal(i * 100_000)).collect();
        let rules = StatisticalLearner.learn(&events, &FrameworkConfig::default());
        assert!(rules.is_empty(), "{rules:?}");
    }

    #[test]
    fn respects_min_samples() {
        // Only 3 fatal events: not enough evidence for any rule.
        let events = vec![fatal(0), fatal(10), fatal(20)];
        assert!(StatisticalLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
    }

    #[test]
    fn ignores_nonfatal_events() {
        let mut events = Vec::new();
        for i in 0..100 {
            events.push(CleanEvent::new(
                Timestamp::from_secs(i * 10),
                EventTypeId(1),
                false,
            ));
        }
        assert!(StatisticalLearner
            .learn(&events, &FrameworkConfig::default())
            .is_empty());
        assert!(fatal_window_counts(&events, Duration::from_secs(300)).is_empty());
    }
}
