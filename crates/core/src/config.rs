//! Framework parameters and the paper's defaults.

use raslog::Duration;
use serde::{Deserialize, Serialize};

/// All tunables of the prediction framework.
///
/// Defaults follow Section 5.2: prediction / rule-generation window
/// `W_P = 300 s`, retraining window `W_R = 4` weeks, association support
/// 0.01 and confidence 0.1 (low on purpose — failures are rare and the
/// reviser removes bad rules), statistical threshold 0.8, distribution
/// threshold 0.6, `MinROC = 0.7`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameworkConfig {
    /// The prediction window `W_P`, also the rule-generation window: rules
    /// are learned from (and warnings are valid for) events within this
    /// span.
    pub window: Duration,
    /// The retraining window `W_R` in weeks.
    pub retrain_weeks: i64,
    /// Minimum association-rule support.
    pub min_support: f64,
    /// Minimum association-rule confidence.
    pub min_confidence: f64,
    /// Maximum association antecedent size.
    pub max_antecedent: usize,
    /// Minimum empirical probability for a statistical rule
    /// ("if `k` failures within `W_P`, another follows with `p ≥ …`").
    pub stat_threshold: f64,
    /// Largest `k` the statistical learner considers.
    pub stat_max_k: usize,
    /// CDF threshold of the probability-distribution learner: warn when
    /// `F(elapsed since last failure) ≥ dist_threshold`.
    pub dist_threshold: f64,
    /// A distribution warning expires once the elapsed time passes this
    /// quantile of the fitted CDF with no failure (the "failure never
    /// came" false alarm).
    pub dist_expire_quantile: f64,
    /// `MinROC` of Algorithm 1.
    pub min_roc: f64,
    /// Whether the reviser runs at all (Fig. 11 ablates this).
    pub use_reviser: bool,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            window: Duration::from_secs(300),
            retrain_weeks: 4,
            min_support: 0.01,
            min_confidence: 0.1,
            max_antecedent: 4,
            stat_threshold: 0.8,
            stat_max_k: 10,
            dist_threshold: 0.6,
            dist_expire_quantile: 0.88,
            min_roc: 0.7,
            use_reviser: true,
        }
    }
}

impl FrameworkConfig {
    /// Same configuration with a different prediction window (Fig. 13
    /// sweeps 5 min – 2 h).
    pub fn with_window(mut self, window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        self.window = window;
        self
    }

    /// Same configuration with the reviser toggled.
    pub fn with_reviser(mut self, use_reviser: bool) -> Self {
        self.use_reviser = use_reviser;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FrameworkConfig::default();
        assert_eq!(c.window, Duration::from_secs(300));
        assert_eq!(c.retrain_weeks, 4);
        assert!((c.min_support - 0.01).abs() < 1e-12);
        assert!((c.min_confidence - 0.1).abs() < 1e-12);
        assert!((c.stat_threshold - 0.8).abs() < 1e-12);
        assert!((c.dist_threshold - 0.6).abs() < 1e-12);
        assert!((c.min_roc - 0.7).abs() < 1e-12);
        assert!(c.use_reviser);
    }

    #[test]
    fn builders() {
        let c = FrameworkConfig::default()
            .with_window(Duration::from_mins(30))
            .with_reviser(false);
        assert_eq!(c.window, Duration::from_mins(30));
        assert!(!c.use_reviser);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        FrameworkConfig::default().with_window(Duration::ZERO);
    }
}
