//! The rule shapes produced by the base learners.

use dml_stats::{ContinuousDistribution, FittedModel};
use raslog::{Duration, EventTypeId};
use serde::{Deserialize, Serialize};

/// Identifier of a rule inside one knowledge repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct RuleId(pub u32);

/// Which base learner produces a rule — also the mixture-of-experts
/// consultation order (association first, distribution last).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RuleKind {
    /// `{non-fatal events} → fatal event` causal correlation.
    Association,
    /// "`k` failures within `W_P` ⇒ another failure" temporal correlation.
    Statistical,
    /// "`k` failures on the same midplane within `W_P` ⇒ another there"
    /// spatial correlation (extension learner; see
    /// [`LocationRule`]).
    Location,
    /// Long-term inter-arrival distribution ("a failure is due").
    Distribution,
}

impl core::fmt::Display for RuleKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            RuleKind::Association => "association",
            RuleKind::Statistical => "statistical",
            RuleKind::Location => "location",
            RuleKind::Distribution => "distribution",
        };
        f.write_str(s)
    }
}

/// An association rule `{e1, …, ek} → f` with its mined measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssociationRule {
    /// Sorted non-fatal antecedent types.
    pub antecedent: Vec<EventTypeId>,
    /// The predicted fatal type.
    pub fatal: EventTypeId,
    /// Mined support.
    pub support: f64,
    /// Mined confidence.
    pub confidence: f64,
}

/// A statistical rule: once `k` fatal events have occurred within `W_P`,
/// another follows with the given empirical probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatisticalRule {
    /// Trigger count within the window.
    pub k: usize,
    /// Empirical probability measured on the training set.
    pub probability: f64,
}

/// A location-recurrence rule: once `k` fatal events have struck the same
/// midplane within `W_P`, another failure follows there with the given
/// empirical probability. This is the repository's extension point in
/// action — the paper's "other predictive methods can be easily
/// incorporated" — exploiting the spatial correlation of failures
/// (failing hardware keeps failing until it is serviced).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocationRule {
    /// Trigger count of same-midplane fatals within the window.
    pub k: usize,
    /// Empirical probability measured on the training set.
    pub probability: f64,
}

/// A probability-distribution rule: warn when the elapsed time since the
/// last failure reaches the CDF threshold; the warning expires (a false
/// alarm) if the elapsed time passes the expiry quantile with no failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionRule {
    /// The fitted inter-arrival model (time unit: seconds).
    pub model: FittedModel,
    /// CDF threshold that triggers the warning.
    pub threshold: f64,
    /// CDF quantile at which an un-fulfilled warning expires.
    pub expire_quantile: f64,
}

impl DistributionRule {
    /// Elapsed time at which the warning triggers (`F⁻¹(threshold)`).
    pub fn trigger_elapsed(&self) -> Duration {
        Duration::from_secs(self.model.quantile(self.threshold) as i64)
    }

    /// Elapsed time at which an active warning expires
    /// (`F⁻¹(expire_quantile)`).
    pub fn expire_elapsed(&self) -> Duration {
        Duration::from_secs(self.model.quantile(self.expire_quantile) as i64)
    }
}

/// Any rule in the knowledge repository.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Rule {
    /// See [`AssociationRule`].
    Association(AssociationRule),
    /// See [`StatisticalRule`].
    Statistical(StatisticalRule),
    /// See [`LocationRule`].
    Location(LocationRule),
    /// See [`DistributionRule`].
    Distribution(DistributionRule),
}

impl Rule {
    /// The producing learner / consultation class.
    pub fn kind(&self) -> RuleKind {
        match self {
            Rule::Association(_) => RuleKind::Association,
            Rule::Statistical(_) => RuleKind::Statistical,
            Rule::Location(_) => RuleKind::Location,
            Rule::Distribution(_) => RuleKind::Distribution,
        }
    }

    /// Structural identity for churn accounting: two repository snapshots
    /// contain "the same rule" when the identities match, even if the
    /// mined measures moved a little between retrainings.
    pub fn identity(&self) -> RuleIdentity {
        match self {
            Rule::Association(r) => RuleIdentity::Association {
                antecedent: r.antecedent.clone(),
                fatal: r.fatal,
            },
            Rule::Statistical(r) => RuleIdentity::Statistical { k: r.k },
            Rule::Location(r) => RuleIdentity::Location { k: r.k },
            Rule::Distribution(r) => RuleIdentity::Distribution {
                family: format!("{}", r.model.family()),
            },
        }
    }
}

/// Hashable structural identity of a rule (see [`Rule::identity`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleIdentity {
    /// Association rules are identified by their antecedent and target.
    Association {
        /// Sorted antecedent types.
        antecedent: Vec<EventTypeId>,
        /// Target fatal type.
        fatal: EventTypeId,
    },
    /// Statistical rules are identified by their trigger count.
    Statistical {
        /// Trigger count.
        k: usize,
    },
    /// Location rules are identified by their trigger count.
    Location {
        /// Trigger count.
        k: usize,
    },
    /// Distribution rules are identified by the fitted family.
    Distribution {
        /// Family name.
        family: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use dml_stats::Weibull;

    fn dist_rule() -> DistributionRule {
        DistributionRule {
            model: FittedModel::Weibull(Weibull::new(0.507936, 19_984.8)),
            threshold: 0.6,
            expire_quantile: 0.98,
        }
    }

    #[test]
    fn paper_example_trigger_time() {
        // F(20000) ≈ 0.63 > 0.60 for the SDSC fit, so the trigger elapsed
        // time must be slightly below 20 000 s.
        let t = dist_rule().trigger_elapsed();
        assert!(t < Duration::from_secs(20_000), "trigger {t}");
        assert!(t > Duration::from_secs(15_000), "trigger {t}");
        assert!(dist_rule().expire_elapsed() > dist_rule().trigger_elapsed());
    }

    #[test]
    fn identities_ignore_measures() {
        let a1 = Rule::Association(AssociationRule {
            antecedent: vec![EventTypeId(1), EventTypeId(2)],
            fatal: EventTypeId(100),
            support: 0.5,
            confidence: 0.9,
        });
        let a2 = Rule::Association(AssociationRule {
            antecedent: vec![EventTypeId(1), EventTypeId(2)],
            fatal: EventTypeId(100),
            support: 0.1,
            confidence: 0.2,
        });
        assert_eq!(a1.identity(), a2.identity());
        let a3 = Rule::Association(AssociationRule {
            antecedent: vec![EventTypeId(1)],
            fatal: EventTypeId(100),
            support: 0.5,
            confidence: 0.9,
        });
        assert_ne!(a1.identity(), a3.identity());
    }

    #[test]
    fn kinds() {
        assert_eq!(
            Rule::Statistical(StatisticalRule {
                k: 4,
                probability: 0.99
            })
            .kind(),
            RuleKind::Statistical
        );
        assert_eq!(
            Rule::Distribution(dist_rule()).kind(),
            RuleKind::Distribution
        );
        assert_eq!(RuleKind::Association.to_string(), "association");
    }

    #[test]
    fn statistical_identity_by_k() {
        let s1 = Rule::Statistical(StatisticalRule {
            k: 4,
            probability: 0.99,
        });
        let s2 = Rule::Statistical(StatisticalRule {
            k: 4,
            probability: 0.85,
        });
        let s3 = Rule::Statistical(StatisticalRule {
            k: 5,
            probability: 0.99,
        });
        assert_eq!(s1.identity(), s2.identity());
        assert_ne!(s1.identity(), s3.identity());
    }
}
