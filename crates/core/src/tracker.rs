//! Online accuracy tracking.
//!
//! The framework "dynamically extract[s] effective rules by actively
//! monitoring prediction accuracy at runtime": this module provides the
//! monitor — a streaming tracker that consumes warnings and events as they
//! happen and maintains rolling precision/recall over a sliding horizon,
//! without ever re-scanning history. The adaptive-window controller
//! ([`crate::adaptive`]) and operational dashboards consume it.

use crate::evaluation::Accuracy;
use crate::predictor::{Warning, WarningId};
use raslog::{CleanEvent, Duration, Timestamp};
use std::collections::VecDeque;

/// A pending or resolved warning inside the tracker.
#[derive(Debug, Clone, Copy)]
struct TrackedWarning {
    id: WarningId,
    issued_at: Timestamp,
    deadline: Timestamp,
    hit: bool,
    /// Already reported through [`AccuracyTracker::drain_resolutions`].
    reported: bool,
}

/// A warning or failure outcome, resolved by the streaming tracker —
/// the join partner for a warning's provenance record in the flight log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarningOutcome {
    /// A fatal landed inside the warning's interval.
    Hit {
        /// The warning that hit.
        id: WarningId,
        /// When the covered fatal struck.
        time: Timestamp,
        /// Issue → fatal, milliseconds (the achieved lead time).
        lead_ms: i64,
    },
    /// The warning's deadline passed with no fatal inside.
    FalseAlarm {
        /// The warning that lapsed.
        id: WarningId,
        /// Its deadline.
        time: Timestamp,
    },
    /// A fatal struck with no warning pending.
    Miss {
        /// When the uncovered fatal struck.
        time: Timestamp,
    },
}

/// A fatal event inside the tracker.
#[derive(Debug, Clone, Copy)]
struct TrackedFatal {
    time: Timestamp,
    covered: bool,
}

/// Streaming precision/recall monitor over a sliding horizon.
///
/// Feed every warning with [`AccuracyTracker::on_warning`] and every
/// observed event with [`AccuracyTracker::on_event`] *in time order*; read
/// the rolling numbers with [`AccuracyTracker::rolling`]. A warning is
/// resolved (true or false) once its deadline passes or a fatal lands in
/// its interval; a fatal is covered when a pending warning's interval
/// contains it.
#[derive(Debug)]
pub struct AccuracyTracker {
    horizon: Duration,
    warnings: VecDeque<TrackedWarning>,
    fatals: VecDeque<TrackedFatal>,
    now: Timestamp,
    /// Outcomes resolved since the last [`Self::drain_resolutions`].
    resolutions: Vec<WarningOutcome>,
}

impl AccuracyTracker {
    /// Creates a tracker that reports over the trailing `horizon`.
    pub fn new(horizon: Duration) -> Self {
        assert!(horizon > Duration::ZERO, "horizon must be positive");
        AccuracyTracker {
            horizon,
            warnings: VecDeque::new(),
            fatals: VecDeque::new(),
            now: Timestamp(i64::MIN),
            resolutions: Vec::new(),
        }
    }

    /// Ingests a warning (call in issue-time order).
    pub fn on_warning(&mut self, warning: &Warning) {
        self.advance(warning.issued_at);
        self.warnings.push_back(TrackedWarning {
            id: warning.id,
            issued_at: warning.issued_at,
            deadline: warning.deadline,
            hit: false,
            reported: false,
        });
    }

    /// Ingests an observed event (call in time order).
    pub fn on_event(&mut self, event: &CleanEvent) {
        self.advance(event.time);
        if !event.fatal {
            return;
        }
        let mut covered = false;
        for w in self.warnings.iter_mut() {
            if w.issued_at < event.time && event.time <= w.deadline {
                if !w.hit {
                    w.hit = true;
                    w.reported = true;
                    self.resolutions.push(WarningOutcome::Hit {
                        id: w.id,
                        time: event.time,
                        lead_ms: (event.time - w.issued_at).millis(),
                    });
                }
                covered = true;
            }
        }
        if !covered {
            self.resolutions.push(WarningOutcome::Miss { time: event.time });
        }
        self.fatals.push_back(TrackedFatal {
            time: event.time,
            covered,
        });
    }

    /// Drains the outcomes resolved since the previous call: hits as they
    /// land, false alarms once their deadline passes the current clock,
    /// misses as the uncovered fatal strikes. Feed these to the flight
    /// recorder as `warning_resolved` records.
    pub fn drain_resolutions(&mut self) -> Vec<WarningOutcome> {
        for w in self.warnings.iter_mut() {
            if !w.reported && !w.hit && w.deadline < self.now {
                w.reported = true;
                self.resolutions.push(WarningOutcome::FalseAlarm {
                    id: w.id,
                    time: w.deadline,
                });
            }
        }
        std::mem::take(&mut self.resolutions)
    }

    /// The rolling accuracy over the trailing horizon. Unresolved warnings
    /// (deadline still in the future) are not counted against precision.
    pub fn rolling(&self) -> Accuracy {
        let mut acc = Accuracy::default();
        for w in &self.warnings {
            if w.deadline >= self.now && !w.hit {
                continue; // still pending
            }
            if w.hit {
                acc.true_warnings += 1;
            } else {
                acc.false_warnings += 1;
            }
        }
        for f in &self.fatals {
            if f.covered {
                acc.covered_fatals += 1;
            } else {
                acc.missed_fatals += 1;
            }
        }
        acc
    }

    /// The current clock (max time seen).
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Warnings currently inside the horizon.
    pub fn tracked_warnings(&self) -> usize {
        self.warnings.len()
    }

    /// Fatal events currently inside the horizon.
    pub fn tracked_fatals(&self) -> usize {
        self.fatals.len()
    }

    fn advance(&mut self, t: Timestamp) {
        if t > self.now {
            self.now = t;
        }
        let cutoff = self.now - self.horizon;
        while self
            .warnings
            .front()
            .is_some_and(|w| w.issued_at < cutoff)
        {
            let w = self.warnings.pop_front().expect("front checked");
            // A warning can age out of the horizon between drains; its
            // outcome is still owed to the flight log.
            if !w.reported && !w.hit && w.deadline < self.now {
                self.resolutions.push(WarningOutcome::FalseAlarm {
                    id: w.id,
                    time: w.deadline,
                });
            }
        }
        while self.fatals.front().is_some_and(|f| f.time < cutoff) {
            self.fatals.pop_front();
        }
    }
}

impl dml_obs::MetricSource for AccuracyTracker {
    fn export(&self, registry: &mut dml_obs::Registry) {
        let acc = self.rolling();
        registry.gauge_set("accuracy.rolling_precision", acc.precision());
        registry.gauge_set("accuracy.rolling_recall", acc.recall());
        registry.gauge_set("accuracy.tracked_warnings", self.warnings.len() as f64);
        registry.gauge_set("accuracy.tracked_fatals", self.fatals.len() as f64);
        registry.counter_add("accuracy.true_warnings", acc.true_warnings);
        registry.counter_add("accuracy.false_warnings", acc.false_warnings);
        registry.counter_add("accuracy.covered_fatals", acc.covered_fatals);
        registry.counter_add("accuracy.missed_fatals", acc.missed_fatals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleId, RuleKind};
    use raslog::EventTypeId;

    fn warn(issued: i64, deadline: i64) -> Warning {
        Warning {
            id: WarningId::new(1, RuleId(0), Timestamp::from_secs(issued)),
            issued_at: Timestamp::from_secs(issued),
            deadline: Timestamp::from_secs(deadline),
            rule: RuleId(0),
            kind: RuleKind::Association,
            predicted: None,
            provenance: Default::default(),
        }
    }

    fn fatal(secs: i64) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(0), true)
    }

    fn nonfatal(secs: i64) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(1), false)
    }

    #[test]
    fn warning_resolution_lifecycle() {
        let mut t = AccuracyTracker::new(Duration::from_hours(10));
        t.on_warning(&warn(0, 300));
        // Pending: not yet counted.
        t.on_event(&nonfatal(100));
        assert_eq!(t.rolling(), Accuracy::default());
        // Fatal lands inside the interval: true warning + covered fatal.
        t.on_event(&fatal(200));
        let acc = t.rolling();
        assert_eq!(acc.true_warnings, 1);
        assert_eq!(acc.covered_fatals, 1);
        assert_eq!(acc.false_warnings, 0);
    }

    #[test]
    fn unfulfilled_warning_becomes_false_after_deadline() {
        let mut t = AccuracyTracker::new(Duration::from_hours(10));
        t.on_warning(&warn(0, 300));
        t.on_event(&nonfatal(200));
        assert_eq!(t.rolling().false_warnings, 0, "still pending");
        t.on_event(&nonfatal(301));
        assert_eq!(t.rolling().false_warnings, 1, "deadline passed");
    }

    #[test]
    fn uncovered_fatal_counts_as_miss() {
        let mut t = AccuracyTracker::new(Duration::from_hours(10));
        t.on_event(&fatal(50));
        let acc = t.rolling();
        assert_eq!(acc.missed_fatals, 1);
        assert_eq!(acc.covered_fatals, 0);
    }

    #[test]
    fn horizon_evicts_old_entries() {
        let mut t = AccuracyTracker::new(Duration::from_secs(1_000));
        t.on_warning(&warn(0, 300));
        t.on_event(&fatal(100));
        assert_eq!(t.rolling().true_warnings, 1);
        // Move far beyond the horizon: everything evicted.
        t.on_event(&nonfatal(10_000));
        assert_eq!(t.rolling(), Accuracy::default());
    }

    #[test]
    fn matches_offline_scoring_on_a_stream() {
        // Interleave warnings and events; rolling (with a huge horizon)
        // must agree with the offline scorer once everything resolves.
        let warnings = vec![warn(0, 300), warn(1_000, 1_300), warn(5_000, 5_300)];
        let events = vec![
            nonfatal(10),
            fatal(200),
            nonfatal(1_400),
            fatal(2_000),
            nonfatal(6_000),
        ];
        let mut t = AccuracyTracker::new(Duration::from_weeks(52));
        let mut wi = 0;
        for e in &events {
            while wi < warnings.len() && warnings[wi].issued_at <= e.time {
                t.on_warning(&warnings[wi]);
                wi += 1;
            }
            t.on_event(e);
        }
        let offline = crate::evaluation::score(&warnings, &events);
        assert_eq!(t.rolling(), offline);
    }

    #[test]
    fn resolutions_drain_hits_false_alarms_and_misses() {
        let mut t = AccuracyTracker::new(Duration::from_hours(10));
        let w_hit = warn(0, 300);
        let w_miss = warn(1_000, 1_300);
        t.on_warning(&w_hit);
        t.on_event(&fatal(200)); // hit, 200 s lead
        t.on_warning(&w_miss);
        t.on_event(&fatal(2_000)); // uncovered → miss; w_miss lapsed
        let out = t.drain_resolutions();
        assert_eq!(
            out,
            vec![
                WarningOutcome::Hit {
                    id: w_hit.id,
                    time: Timestamp::from_secs(200),
                    lead_ms: 200_000,
                },
                WarningOutcome::Miss {
                    time: Timestamp::from_secs(2_000),
                },
                WarningOutcome::FalseAlarm {
                    id: w_miss.id,
                    time: Timestamp::from_secs(1_300),
                },
            ]
        );
        // Nothing is reported twice.
        assert!(t.drain_resolutions().is_empty());
        t.on_event(&nonfatal(3_000));
        assert!(t.drain_resolutions().is_empty());
    }

    #[test]
    fn eviction_still_reports_unresolved_false_alarms() {
        let mut t = AccuracyTracker::new(Duration::from_secs(1_000));
        let w = warn(0, 300);
        t.on_warning(&w);
        // Jump far past the horizon without draining in between: the
        // warning is evicted but its false alarm is still owed.
        t.on_event(&nonfatal(10_000));
        assert_eq!(t.tracked_warnings(), 0);
        let out = t.drain_resolutions();
        assert_eq!(
            out,
            vec![WarningOutcome::FalseAlarm {
                id: w.id,
                time: Timestamp::from_secs(300),
            }]
        );
    }

    #[test]
    fn repeated_hits_resolve_once() {
        let mut t = AccuracyTracker::new(Duration::from_hours(10));
        t.on_warning(&warn(0, 300));
        t.on_event(&fatal(100));
        t.on_event(&fatal(200)); // same warning covers a second fatal
        let hits = t
            .drain_resolutions()
            .into_iter()
            .filter(|o| matches!(o, WarningOutcome::Hit { .. }))
            .count();
        assert_eq!(hits, 1, "a warning resolves at most once");
        assert_eq!(t.rolling().covered_fatals, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_horizon_panics() {
        AccuracyTracker::new(Duration::ZERO);
    }
}
