//! # dml-core — the dynamic meta-learning failure-prediction engine
//!
//! The paper's contribution (Section 4): a prediction methodology built
//! from a **meta-learner**, a **reviser** and an **event-driven predictor**
//! operating on a periodically re-trained knowledge repository.
//!
//! * [`config`] — all framework parameters with the paper's defaults
//!   (`W_P = 300 s`, `W_R = 4` weeks, support 0.01 / confidence 0.1,
//!   statistical threshold 0.8, distribution threshold 0.6,
//!   `MinROC = 0.7`);
//! * [`rules`] — the three rule shapes produced by the base learners;
//! * [`learners`] — the base learners: association rules, statistical
//!   rules, probability distribution;
//! * [`meta`] — the mixture-of-experts meta-learner that trains all base
//!   learners and orders their rules (association → statistical →
//!   distribution);
//! * [`reviser`] — Algorithm 1: per-rule ROC filtering on the training set;
//! * [`knowledge`] — the knowledge repository with the `E-List`/`F-List`
//!   indices of Algorithm 2 plus rule-churn accounting;
//! * [`predictor`] — Algorithm 2: the event-driven online matcher;
//! * [`evaluation`] — warning/failure matching, precision & recall, weekly
//!   accuracy series;
//! * [`driver`] — the dynamic retraining loop over a multi-year log with
//!   static / sliding / growing training-window policies;
//! * [`venn`] — which base learner covers which failure (the paper's
//!   Fig. 8).
//!
//! Extensions beyond the paper: [`tracker`] (streaming accuracy monitor),
//! [`adaptive`] (the adaptive prediction-window controller sketched as
//! future work), [`learners::LocationLearner`] (a fourth, spatial base
//! learner), [`persist`] (rule hand-off between trainer and predictor
//! processes, plus crash-recovery checkpoints), [`resilience`]
//! (degraded-mode retraining with panic isolation and the hardened
//! driver), [`slo`] (the burn-rate accuracy watchdog), [`lifecycle`]
//! (canary-gated installs, last-known-good rollback), [`admission`]
//! (bounded ingest queue with never-shed-fatal load shedding), [`fleet`]
//! (sharded multi-machine serving with shard supervision,
//! checkpoint/spool recovery and degraded-mode fallback) and
//! [`registry`] (the versioned rule-repository registry driving staged
//! canary rollouts with automatic fleet-wide rollback).
//!
//! # Example
//!
//! Train on a toy event stream with a planted precursor pattern and
//! predict online:
//!
//! ```
//! use dml_core::{evaluation, FrameworkConfig, MetaLearner, Predictor};
//! use raslog::{CleanEvent, EventTypeId, Timestamp};
//!
//! // {type 1, type 2} precede fatal type 100 by ~200 s, forty times over.
//! let mut events = Vec::new();
//! for i in 0..40i64 {
//!     let base = i * 10_000;
//!     events.push(CleanEvent::new(Timestamp::from_secs(base), EventTypeId(1), false));
//!     events.push(CleanEvent::new(Timestamp::from_secs(base + 50), EventTypeId(2), false));
//!     events.push(CleanEvent::new(Timestamp::from_secs(base + 200), EventTypeId(100), true));
//! }
//!
//! let config = FrameworkConfig::default(); // W_P = 300 s, MinROC = 0.7, …
//! let outcome = MetaLearner::new(config).train(&events[..90]);
//! assert!(!outcome.repo.is_empty());
//!
//! let warnings = Predictor::new(&outcome.repo, config.window).observe_all(&events[90..]);
//! let accuracy = evaluation::score(&warnings, &events[90..]);
//! assert!(accuracy.recall() > 0.9);
//! assert!(accuracy.precision() > 0.9);
//! ```

pub mod adaptive;
pub mod admission;
pub mod config;
pub mod driver;
pub mod evaluation;
pub mod fleet;
pub mod knowledge;
pub mod learners;
pub mod lifecycle;
pub mod meta;
pub mod overlap;
pub mod persist;
pub mod predictor;
pub mod registry;
pub mod resilience;
pub mod reviser;
pub mod rules;
pub mod slo;
pub mod tracker;
pub mod venn;

pub use adaptive::{next_window, run_adaptive_driver, AdaptiveReport, AdaptiveWindowConfig};
pub use admission::{AdmissionConfig, AdmissionQueue, AdmissionStats};
pub use config::FrameworkConfig;
pub use driver::{run_driver, ChurnRecord, DriverConfig, DriverReport, TrainingPolicy};
pub use evaluation::{
    coverage_counts, lead_times_ms, run_predictor, score, weekly_series, Accuracy, WeekAccuracy,
};
pub use fleet::{
    run_fleet, FaultSchedule, FleetConfig, FleetFault, FleetReport, ShardReport, Spool,
};
pub use knowledge::{KnowledgeRepository, RuleChurn, StoredRule};
pub use learners::{
    AssociationLearner, BaseLearner, DistributionLearner, LocationLearner, StatisticalLearner,
};
pub use lifecycle::{
    canary_compare, CanaryVerdict, KnownGoodRing, LifecycleConfig, LifecycleMode,
    LifecycleOutcome, RetrainBackoff,
};
pub use meta::{MetaLearner, TrainingOutcome};
pub use overlap::{run_overlapped_driver, OverlapStats, RetrainRequest, SwapContext, SwapMode};
pub use persist::{
    load_checkpoint, load_checkpoint_file, load_registry, load_registry_file, load_repository,
    load_repository_file, save_checkpoint, save_checkpoint_file, save_registry,
    save_registry_file, save_repository, save_repository_file, Checkpoint, PersistError,
    RegistryCheckpoint,
};
pub use predictor::{
    Precursor, Predictor, PredictorMetrics, PredictorState, Provenance, Warning, WarningId,
    DEFAULT_LATENCY_SAMPLE_EVERY, MAX_PRECURSORS,
};
pub use resilience::{
    run_hardened_driver, run_hardened_driver_with, run_overlapped_hardened_driver,
    run_overlapped_hardened_driver_with, HardenedConfig, HardenedReport, IngestHealth,
    LearnerHealth, LearnerOutcome, PipelineHealth, ResilienceConfig, ResilientTrainer,
    SharedFlightRecorder,
};
pub use registry::{
    parse_pins, parse_stage_fractions, RolloutChaos, RolloutConfig, RolloutDecision, RolloutState,
    RuleRegistry, StagePlan,
};
pub use rules::{Rule, RuleId, RuleIdentity, RuleKind};
pub use slo::{
    per_cycle_accuracy, run_watchdog, CycleAccuracy, SloAlert, SloConfig, SloSeverity, SloWatchdog,
};
pub use tracker::{AccuracyTracker, WarningOutcome};
