//! The event-driven predictor (Algorithm 2).
//!
//! The predictor keeps the most recent events within the prediction window
//! `W_P` and, on every arrival, consults the knowledge repository in
//! mixture-of-experts order:
//!
//! 1. a **non-fatal** event is routed through the `E-List` to the
//!    association rules it may complete;
//! 2. a **fatal** event is checked against the statistical rules
//!    ("`k` fatals within `W_P`");
//! 3. if neither produced a warning, the probability-distribution rule is
//!    consulted: once the elapsed time since the last failure crosses the
//!    fitted CDF threshold, one warning per failure gap is issued, valid
//!    until the elapsed time passes the expiry quantile.
//!
//! A rule does not re-issue a warning while its previous warning is still
//! pending (per-rule rate limiting), which keeps the false-alarm
//! accounting honest.

use crate::evaluation::Accuracy;
use crate::knowledge::KnowledgeRepository;
use crate::rules::{Rule, RuleId, RuleKind};
use dml_obs::Histogram;
use raslog::batch::{decode_midplane, EventBatch};
use raslog::{CleanEvent, Duration, EventTypeId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::time::Instant;

/// Dense `small integer key → pending deadline` table (rule ids and
/// event-type ids are small sequential integers, so a bounds-checked
/// indexed load replaces a hash probe on the per-event hot path). Keys
/// past the end of the table read as "no deadline"; `set` grows the
/// table on demand, which keeps stale checkpoint ids harmless.
#[derive(Debug, Clone, Default)]
struct DeadlineTable {
    slots: Vec<Option<Timestamp>>,
}

impl DeadlineTable {
    fn with_capacity(n: usize) -> Self {
        DeadlineTable {
            slots: vec![None; n],
        }
    }

    #[inline]
    fn get(&self, key: usize) -> Option<Timestamp> {
        self.slots.get(key).copied().flatten()
    }

    #[inline]
    fn set(&mut self, key: usize, deadline: Timestamp) {
        if key >= self.slots.len() {
            self.slots.resize(key + 1, None);
        }
        self.slots[key] = Some(deadline);
    }

    #[inline]
    fn clear(&mut self, key: usize) {
        if let Some(slot) = self.slots.get_mut(key) {
            *slot = None;
        }
    }

    /// Occupied entries in ascending key order.
    fn pairs(&self) -> Vec<(usize, Timestamp)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(k, d)| d.map(|d| (k, d)))
            .collect()
    }
}

/// How many `u64` words cover the full `u16` event-type space. The
/// presence bitmask is allocated at this fixed size (8 KiB per
/// predictor) so hostile type ids never need growth logic and mask
/// word indexes are always in bounds.
const PRESENT_MASK_WORDS: usize = (u16::MAX as usize + 1) / 64;

/// Dense multiplicity table of the event types currently inside the
/// sliding window (the `present` set of Algorithm 2), plus a presence
/// bitmask (bit `ty` set iff `counts[ty] > 0`).
///
/// The mask is maintained inside `add`/`remove` so every serving path
/// — live or retired — keeps it coherent by construction; the live
/// matcher tests whole antecedents against it with a couple of
/// word-AND compares instead of per-item count probes.
#[derive(Debug, Clone)]
struct TypeCounts {
    counts: Vec<u32>,
    mask: Vec<u64>,
}

impl TypeCounts {
    fn with_capacity(n: usize) -> Self {
        TypeCounts {
            counts: vec![0; n],
            mask: vec![0; PRESENT_MASK_WORDS],
        }
    }

    #[inline]
    fn contains(&self, ty: EventTypeId) -> bool {
        self.counts.get(ty.0 as usize).is_some_and(|&c| c > 0)
    }

    /// One word of the presence bitmask (`w < PRESENT_MASK_WORDS`).
    #[inline]
    fn word(&self, w: u16) -> u64 {
        self.mask[w as usize]
    }

    #[inline]
    fn add(&mut self, ty: EventTypeId) {
        let slot = ty.0 as usize;
        if slot >= self.counts.len() {
            self.counts.resize(slot + 1, 0);
        }
        self.counts[slot] += 1;
        self.mask[slot >> 6] |= 1u64 << (slot & 63);
    }

    #[inline]
    fn remove(&mut self, ty: EventTypeId) {
        let slot = ty.0 as usize;
        if let Some(c) = self.counts.get_mut(slot) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                self.mask[slot >> 6] &= !(1u64 << (slot & 63));
            }
        }
    }
}

/// How often the hot path samples its own match latency: every Nth
/// [`Predictor::observe`] call pays for one `Instant` pair. At the
/// default every-64 the instrumentation overhead stays well under the
/// 5% budget measured by the `predictor_hot_path` bench.
pub const DEFAULT_LATENCY_SAMPLE_EVERY: u32 = 64;

/// Hot-path counters of one predictor. Plain integers bumped inline (no
/// atomics, no map lookups), so [`Predictor::observe`] stays cheap; the
/// match-latency histogram is fed by sampled `Instant` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorMetrics {
    /// Events fed through [`Predictor::observe`] (warm-up included).
    pub events_observed: u64,
    /// Fatal events among them.
    pub fatals_observed: u64,
    /// Warnings returned to the caller.
    pub warnings_issued: u64,
    /// Warnings withheld because the rule or target already had one
    /// pending (per-rule rate limiting).
    pub warnings_suppressed: u64,
    /// Re-fires where the previous warning's deadline had already
    /// passed unfulfilled.
    pub warnings_expired: u64,
    /// Peak sliding-window occupancy (non-fatal + fatal events held).
    pub window_peak: u64,
    /// Sampled per-event match latency, microseconds.
    pub match_latency_us: Histogram,
    /// Lead times (warning issue → the covered fatal), milliseconds.
    /// Filled in by the drivers after scoring — the predictor itself
    /// cannot know a warning hit until the failure arrives.
    #[serde(default = "Histogram::lead_time_ms")]
    pub lead_time_ms: Histogram,
    /// Rules in the repository this predictor matches against.
    pub rules: u64,
    /// E-List index entries (type → association rule).
    pub e_list_entries: u64,
    /// F-List index entries (fatal type → association rule).
    pub f_list_entries: u64,
}

impl Default for PredictorMetrics {
    fn default() -> Self {
        PredictorMetrics {
            events_observed: 0,
            fatals_observed: 0,
            warnings_issued: 0,
            warnings_suppressed: 0,
            warnings_expired: 0,
            window_peak: 0,
            match_latency_us: Histogram::latency_us(),
            lead_time_ms: Histogram::lead_time_ms(),
            rules: 0,
            e_list_entries: 0,
            f_list_entries: 0,
        }
    }
}

impl PredictorMetrics {
    /// Folds another predictor's counters into this one (driver blocks
    /// each run their own predictor; the report wants the run total).
    /// Repository-size gauges take the other's values — blocks arrive in
    /// time order, so the latest rule set wins.
    pub fn merge(&mut self, other: &PredictorMetrics) {
        self.events_observed += other.events_observed;
        self.fatals_observed += other.fatals_observed;
        self.warnings_issued += other.warnings_issued;
        self.warnings_suppressed += other.warnings_suppressed;
        self.warnings_expired += other.warnings_expired;
        self.window_peak = self.window_peak.max(other.window_peak);
        self.match_latency_us.merge(&other.match_latency_us);
        self.lead_time_ms.merge(&other.lead_time_ms);
        self.rules = other.rules;
        self.e_list_entries = other.e_list_entries;
        self.f_list_entries = other.f_list_entries;
    }
}

impl dml_obs::MetricSource for PredictorMetrics {
    fn export(&self, registry: &mut dml_obs::Registry) {
        registry.counter_add("predict.events_observed", self.events_observed);
        registry.counter_add("predict.fatals_observed", self.fatals_observed);
        registry.counter_add("predict.warnings_issued", self.warnings_issued);
        registry.counter_add("predict.warnings_suppressed", self.warnings_suppressed);
        registry.counter_add("predict.warnings_expired", self.warnings_expired);
        registry.gauge_set("predict.window_peak", self.window_peak as f64);
        registry.gauge_set("predict.rules", self.rules as f64);
        registry.gauge_set("predict.e_list_entries", self.e_list_entries as f64);
        registry.gauge_set("predict.f_list_entries", self.f_list_entries as f64);
        registry.merge_histogram("predict.match_latency_us", &self.match_latency_us);
        registry.merge_histogram("predict.lead_time_ms", &self.lead_time_ms);
    }
}

/// Most precursors a warning records (association antecedents and the
/// window's fatal history are both far smaller in practice; the cap only
/// bounds a pathological repository).
pub const MAX_PRECURSORS: usize = 16;

/// The stable identity of one warning: the repository version it was
/// issued under, the issuing rule, and the issue timestamp. Per-rule
/// rate limiting guarantees a rule cannot fire twice at one timestamp,
/// so the triple is unique within a run — and every component is derived
/// from stream state alone, so the serial driver and a
/// `SwapMode::Synchronous` overlapped run assign identical ids.
///
/// Rendered (and serialized) as `w{version}-r{rule}-{issued_ms}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(into = "String", try_from = "String")]
pub struct WarningId {
    /// [`KnowledgeRepository::version`] the rule was matched against.
    pub repo_version: u64,
    /// The issuing rule.
    pub rule: RuleId,
    /// Issue time, milliseconds since the log epoch.
    pub issued_ms: i64,
}

impl WarningId {
    /// The id of a warning issued by `rule` at `issued_at` under
    /// repository version `repo_version`.
    pub fn new(repo_version: u64, rule: RuleId, issued_at: Timestamp) -> Self {
        WarningId {
            repo_version,
            rule,
            issued_ms: issued_at.0,
        }
    }
}

impl Default for WarningId {
    fn default() -> Self {
        WarningId {
            repo_version: 0,
            rule: RuleId(0),
            issued_ms: 0,
        }
    }
}

impl fmt::Display for WarningId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}-r{}-{}", self.repo_version, self.rule.0, self.issued_ms)
    }
}

impl FromStr for WarningId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("invalid warning id {s:?} (expected w<version>-r<rule>-<ms>)");
        let rest = s.strip_prefix('w').ok_or_else(bad)?;
        let (version, rest) = rest.split_once("-r").ok_or_else(bad)?;
        let (rule, ms) = rest.split_once('-').ok_or_else(bad)?;
        Ok(WarningId {
            repo_version: version.parse().map_err(|_| bad())?,
            rule: RuleId(rule.parse().map_err(|_| bad())?),
            issued_ms: ms.parse().map_err(|_| bad())?,
        })
    }
}

impl From<WarningId> for String {
    fn from(id: WarningId) -> String {
        id.to_string()
    }
}

impl TryFrom<String> for WarningId {
    type Error = String;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        s.parse()
    }
}

/// One sliding-window event that contributed to a warning firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Precursor {
    /// When the precursor event arrived.
    pub time: Timestamp,
    /// Its event type; `None` for fatal-history precursors, where the
    /// window only retains arrival time and midplane.
    pub event_type: Option<EventTypeId>,
}

/// Why a warning fired: the issuing rule's training-time measures and the
/// matched sliding-window evidence. Built only when a warning is actually
/// issued (suppressed candidates allocate nothing), so the hot-path
/// overhead budget is untouched.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// [`KnowledgeRepository::version`] the rule was matched against
    /// (correct across `overlap` hot-swaps — the predictor caches the
    /// version of the repository it was built over).
    pub repo_version: u64,
    /// Training-time support (association rules).
    pub support: Option<f64>,
    /// Training-time confidence (association rules).
    pub confidence: Option<f64>,
    /// Trigger probability: the statistical/location rule's estimate, or
    /// the distribution rule's CDF trigger threshold.
    pub probability: Option<f64>,
    /// The reviser's training-window accuracy counts for the rule
    /// (precision/recall/ROC derivable), when the reviser scored it.
    pub training: Option<Accuracy>,
    /// Matched precursor events, oldest first, capped at
    /// [`MAX_PRECURSORS`].
    pub precursors: Vec<Precursor>,
}

/// A failure warning: "a failure may occur in `(issued_at, deadline]`".
///
/// The `id` and `provenance` fields default when absent so warning JSONL
/// written before this schema still deserializes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Warning {
    /// Stable identity (see [`WarningId`]).
    #[serde(default)]
    pub id: WarningId,
    /// When the warning was produced.
    pub issued_at: Timestamp,
    /// End of the validity interval.
    pub deadline: Timestamp,
    /// The rule that fired.
    pub rule: RuleId,
    /// The kind of that rule.
    pub kind: RuleKind,
    /// The specific fatal type predicted (association rules only).
    pub predicted: Option<EventTypeId>,
    /// Why the rule fired.
    #[serde(default)]
    pub provenance: Provenance,
}

impl Warning {
    /// The flight-recorder record for this warning's issuance.
    pub fn flight_event(&self) -> dml_obs::FlightEvent {
        dml_obs::FlightEvent::WarningIssued {
            id: self.id.to_string(),
            rule: self.rule.0,
            learner: self.kind.to_string(),
            repo_version: self.provenance.repo_version,
            deadline_ms: self.deadline.0,
            predicted: self.predicted.map(|t| t.0),
            support: self.provenance.support,
            confidence: self.provenance.confidence,
            probability: self.provenance.probability,
            training_roc: self.provenance.training.map(|a| a.roc()),
            precursors: self
                .provenance
                .precursors
                .iter()
                .map(|p| dml_obs::FlightPrecursor {
                    t_ms: p.time.0,
                    event_type: p.event_type.map(|t| t.0),
                })
                .collect(),
        }
    }
}

/// The predictor's mutable state, detached from the repository borrow so
/// it can be checkpointed and restored across process restarts.
///
/// Maps are serialized as pair vectors (JSON objects only take string
/// keys); `present` is derived from `recent`, and the distribution
/// thresholds are derived from the repository, so neither is stored.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictorState {
    /// Non-fatal events within the window.
    pub recent: Vec<(Timestamp, EventTypeId)>,
    /// Fatal events within the window.
    pub recent_fatals: Vec<(Timestamp, Option<(u8, u8)>)>,
    /// Time of the most recent fatal event, if any.
    pub last_fatal: Option<Timestamp>,
    /// Pending warnings: rule → deadline.
    pub active: Vec<(RuleId, Timestamp)>,
    /// Pending warnings: predicted fatal type → deadline.
    pub active_targets: Vec<(EventTypeId, Timestamp)>,
    /// Whether the distribution rule may still fire this failure gap.
    pub dist_armed: bool,
}

/// Flattened, cache-dense projections of the repository's match
/// indexes, built once per predictor (and per restore/hot-swap, since
/// those construct a fresh predictor too).
///
/// The per-candidate pointer chase of the retired matcher — rule id →
/// `StoredRule` → enum discriminant → antecedent `Vec` on its own heap
/// block — is replaced by a sequential scan of small inline entries
/// with the antecedent items packed in one arena. `repo.get` is only
/// touched after a rule actually fires, to build provenance; warnings
/// are rare, candidate probes are not.
struct MatchTables {
    /// By trigger type: half-open `(start, end)` range into `assoc`.
    /// Types past the table end (possible on hostile inputs) match the
    /// E-List behaviour: no candidates.
    assoc_index: Vec<(u32, u32)>,
    /// Association candidates, grouped by trigger type in E-List order
    /// (order is load-bearing: warnings must come out in the retired
    /// path's order for parity).
    assoc: Vec<AssocEntry>,
    /// Overflow antecedent presence pairs for the rare candidate whose
    /// antecedent touches more than two mask words (`AssocEntry` holds
    /// the first two inline).
    pairs: Vec<(u16, u64)>,
    /// Statistical rules as `(k, id)`, ascending `k`.
    stat: Vec<(usize, RuleId)>,
    /// Location-recurrence rules as `(k, id)`, ascending `k`.
    loc: Vec<(usize, RuleId)>,
}

/// One association candidate, sized for a straight-line presence test:
/// the antecedent folds into per-word bitmasks, of which the first two
/// live inline (`w1`/`m1` is a vacuous `(0, 0)` when one suffices —
/// `word & 0 == 0` always holds) and any overflow spills to
/// `MatchTables::pairs`. The candidate matches iff every pair satisfies
/// `present.word(w) & m == m`; no per-item probing, no iterator setup
/// on the common path.
struct AssocEntry {
    id: RuleId,
    /// Predicted fatal type.
    fatal: EventTypeId,
    w0: u16,
    w1: u16,
    m0: u64,
    m1: u64,
    /// `pairs[start..end]` holds mask words three and up (empty for
    /// nearly every rule).
    start: u32,
    end: u32,
}

impl MatchTables {
    fn build(repo: &KnowledgeRepository) -> Self {
        let mut assoc_index = Vec::with_capacity(repo.type_table_len());
        let mut assoc = Vec::new();
        let mut pairs: Vec<(u16, u64)> = Vec::new();
        for ty in 0..repo.type_table_len() {
            let start = assoc.len() as u32;
            for &id in repo.rules_triggered_by(EventTypeId(ty as u16)) {
                let Rule::Association(a) = &repo.get(id).rule else {
                    unreachable!("E-List indexes only association rules")
                };
                // Fold the antecedent into per-word masks, ascending by
                // word: first two inline, the rest spilled.
                let mut words: Vec<(u16, u64)> = Vec::new();
                for &item in &a.antecedent {
                    let (w, bit) = (item.0 >> 6, 1u64 << (item.0 & 63));
                    match words.iter_mut().find(|&&mut (pw, _)| pw == w) {
                        Some((_, m)) => *m |= bit,
                        None => words.push((w, bit)),
                    }
                }
                words.sort_unstable_by_key(|&(w, _)| w);
                let (w0, m0) = words.first().copied().unwrap_or((0, 0));
                let (w1, m1) = words.get(1).copied().unwrap_or((0, 0));
                let s = pairs.len() as u32;
                if words.len() > 2 {
                    pairs.extend(&words[2..]);
                }
                assoc.push(AssocEntry {
                    id,
                    fatal: a.fatal,
                    w0,
                    w1,
                    m0,
                    m1,
                    start: s,
                    end: pairs.len() as u32,
                });
            }
            assoc_index.push((start, assoc.len() as u32));
        }
        let stat = repo
            .statistical_rules()
            .iter()
            .map(|&id| {
                let Rule::Statistical(s) = &repo.get(id).rule else {
                    unreachable!("statistical index holds only statistical rules")
                };
                (s.k, id)
            })
            .collect();
        let loc = repo
            .location_rules()
            .iter()
            .map(|&id| {
                let Rule::Location(l) = &repo.get(id).rule else {
                    unreachable!("location index holds only location rules")
                };
                (l.k, id)
            })
            .collect();
        MatchTables {
            assoc_index,
            assoc,
            pairs,
            stat,
            loc,
        }
    }
}

/// The online matcher.
pub struct Predictor<'r> {
    repo: &'r KnowledgeRepository,
    /// Cached [`KnowledgeRepository::version`] — stamped into every
    /// warning id/provenance, so a hot-swap mid-run cannot misattribute
    /// warnings issued by the previous rule set.
    repo_version: u64,
    window: Duration,
    /// Non-fatal events within the window (time, type).
    recent: VecDeque<(Timestamp, EventTypeId)>,
    /// Multiplicity of each type currently in `recent` (dense table).
    present: TypeCounts,
    /// Fatal events within the window: `(time, midplane)`.
    recent_fatals: VecDeque<(Timestamp, Option<(u8, u8)>)>,
    /// Time of the most recent fatal event, if any.
    last_fatal: Option<Timestamp>,
    /// Rule → deadline of its currently pending warning (dense by rule
    /// id — repository ids are sequential).
    active: DeadlineTable,
    /// Predicted fatal type → deadline of the pending warning about it.
    /// Algorithm 2 warns that "failure fᵢ may occur within `W_P`": many
    /// association rules (antecedent subsets) predict the same failure, so
    /// warnings are deduplicated per predicted type, not only per rule.
    active_targets: DeadlineTable,
    /// One distribution warning per failure gap.
    dist_armed: bool,
    /// Precomputed (rule, trigger elapsed, expire elapsed).
    dist_thresholds: Vec<(RuleId, Duration, Duration)>,
    /// Hot-path counters and sampled latency.
    metrics: PredictorMetrics,
    /// Sample the match latency every Nth event (0 disables timing).
    latency_sample_every: u32,
    /// Reusable struct-of-arrays scratch for [`Predictor::observe_all`]:
    /// one batch build per served chunk, zero steady-state allocation.
    batch_scratch: EventBatch,
    /// Flattened match tables the live engine sweeps (the retired
    /// baseline deliberately keeps walking the repository indexes).
    tables: MatchTables,
    /// Reusable buffer for candidates that passed the presence test of
    /// one event, awaiting rate-limit gating (the scan phase only reads
    /// `self`, so it stays branch-lean; gating then mutates freely).
    match_scratch: Vec<(RuleId, EventTypeId)>,
}

impl<'r> Predictor<'r> {
    /// Creates a predictor over `repo` with prediction window `window`.
    pub fn new(repo: &'r KnowledgeRepository, window: Duration) -> Self {
        assert!(window > Duration::ZERO, "window must be positive");
        let dist_thresholds = repo
            .distribution_rules()
            .iter()
            .map(|&id| {
                let Rule::Distribution(d) = &repo.get(id).rule else {
                    unreachable!("distribution index holds only distribution rules")
                };
                (id, d.trigger_elapsed(), d.expire_elapsed())
            })
            .collect();
        let metrics = PredictorMetrics {
            rules: repo.len() as u64,
            e_list_entries: repo.e_list_entries() as u64,
            f_list_entries: repo.f_list_entries() as u64,
            ..PredictorMetrics::default()
        };
        Predictor {
            repo,
            repo_version: repo.version(),
            window,
            recent: VecDeque::new(),
            present: TypeCounts::with_capacity(repo.type_table_len()),
            recent_fatals: VecDeque::new(),
            last_fatal: None,
            active: DeadlineTable::with_capacity(repo.len()),
            active_targets: DeadlineTable::with_capacity(repo.type_table_len()),
            dist_armed: false,
            dist_thresholds,
            metrics,
            latency_sample_every: DEFAULT_LATENCY_SAMPLE_EVERY,
            batch_scratch: EventBatch::new(),
            tables: MatchTables::build(repo),
            match_scratch: Vec::new(),
        }
    }

    /// The hot-path counters accumulated so far.
    pub fn metrics(&self) -> &PredictorMetrics {
        &self.metrics
    }

    /// Resets the counters (repository-size gauges are kept). The driver
    /// calls this after warm-up so reports only count the test stream.
    pub fn reset_metrics(&mut self) {
        self.metrics = PredictorMetrics {
            rules: self.metrics.rules,
            e_list_entries: self.metrics.e_list_entries,
            f_list_entries: self.metrics.f_list_entries,
            ..PredictorMetrics::default()
        };
    }

    /// Overrides how often the match latency is sampled (every Nth
    /// event; 0 disables the `Instant` reads entirely — the bench
    /// baseline).
    pub fn set_latency_sampling(&mut self, every: u32) {
        self.latency_sample_every = every;
    }

    /// Captures the mutable state for checkpointing.
    pub fn snapshot(&self) -> PredictorState {
        PredictorState {
            recent: self.recent.iter().copied().collect(),
            recent_fatals: self.recent_fatals.iter().copied().collect(),
            last_fatal: self.last_fatal,
            // Dense-table iteration is already ascending by key, matching
            // the sorted pair-vector format of earlier checkpoints.
            active: self
                .active
                .pairs()
                .into_iter()
                .map(|(k, d)| (RuleId(k as u32), d))
                .collect(),
            active_targets: self
                .active_targets
                .pairs()
                .into_iter()
                .map(|(k, d)| (EventTypeId(k as u16), d))
                .collect(),
            dist_armed: self.dist_armed,
        }
    }

    /// Rebuilds a predictor from a checkpointed state.
    ///
    /// Behaves identically to the predictor the snapshot was taken from:
    /// the sliding windows resume where they left off and pending warnings
    /// keep rate-limiting their rules and targets. Stale rule ids (from a
    /// repository that no longer contains them) are harmless — they can
    /// never match again.
    pub fn restore(
        repo: &'r KnowledgeRepository,
        window: Duration,
        state: PredictorState,
    ) -> Self {
        let mut p = Predictor::new(repo, window);
        for &(_, ty) in &state.recent {
            p.present.add(ty);
        }
        p.recent = state.recent.into();
        p.recent_fatals = state.recent_fatals.into();
        p.last_fatal = state.last_fatal;
        for (rule, deadline) in state.active {
            p.active.set(rule.0 as usize, deadline);
        }
        for (ty, deadline) in state.active_targets {
            p.active_targets.set(ty.0 as usize, deadline);
        }
        p.dist_armed = state.dist_armed;
        p
    }

    /// Feeds one event; returns the warnings it triggers.
    ///
    /// The single-event entry point for genuinely per-event consumers
    /// (traced serving, spool replay of individual records). It serves
    /// through the live engine — the same flattened tables as the batch
    /// sweep — but keeps the one-`Vec`-per-call shape; chunked callers
    /// go through [`Self::observe_all`] instead.
    pub fn observe(&mut self, ev: &CleanEvent) -> Vec<Warning> {
        let timed = self.latency_sample_every != 0
            && self
                .metrics
                .events_observed
                .is_multiple_of(self.latency_sample_every as u64);
        let start = timed.then(Instant::now);
        self.metrics.events_observed += 1;
        if ev.fatal {
            self.metrics.fatals_observed += 1;
        }

        let mut warnings = Vec::new();
        self.evict_scan(ev.time);
        self.match_core(
            ev.time,
            ev.type_id,
            ev.fatal,
            if ev.fatal { ev.location.midplane() } else { None },
            &mut warnings,
        );

        self.metrics.warnings_issued += warnings.len() as u64;
        let occupancy = (self.recent.len() + self.recent_fatals.len()) as u64;
        if occupancy > self.metrics.window_peak {
            self.metrics.window_peak = occupancy;
        }
        if let Some(t) = start {
            self.metrics
                .match_latency_us
                .record(t.elapsed().as_secs_f64() * 1e6);
        }
        warnings
    }

    /// The matching core of Algorithm 2 (uninstrumented), appending any
    /// warnings to `warnings`. `midplane` is the event's midplane when
    /// fatal (`None` otherwise — non-fatal matching never consults it),
    /// pre-decomposed so the batch sweep can feed column loads straight
    /// in without touching a `Location`.
    ///
    /// The caller evicts first: [`Self::observe`] scans the deque
    /// fronts per call, the batch sweep amortizes the check through a
    /// register-held horizon. Candidate probing goes through the
    /// flattened [`MatchTables`]; the repository is only consulted once
    /// a rule fires (provenance).
    #[inline]
    fn match_core(
        &mut self,
        time: Timestamp,
        type_id: EventTypeId,
        fatal: bool,
        midplane: Option<(u8, u8)>,
        warnings: &mut Vec<Warning>,
    ) {
        let issued_before = warnings.len();

        if fatal {
            self.recent_fatals.push_back((time, midplane));
            let count = self.recent_fatals.len();
            for i in 0..self.tables.stat.len() {
                let (k, id) = self.tables.stat[i];
                if k > count {
                    break; // ascending k: no further rule can match
                }
                if self.warn_allowed(time, id, None) {
                    let Rule::Statistical(s) = &self.repo.get(id).rule else {
                        unreachable!()
                    };
                    let provenance = Provenance {
                        repo_version: self.repo_version,
                        probability: Some(s.probability),
                        training: self.repo.get(id).training_counts,
                        precursors: self.fatal_precursors(),
                        ..Provenance::default()
                    };
                    self.issue(
                        warnings,
                        time,
                        id,
                        RuleKind::Statistical,
                        None,
                        time + self.window,
                        provenance,
                    );
                }
            }
            // Location-recurrence rules: same-midplane fatal count.
            if !self.tables.loc.is_empty() {
                if let Some(mp) = midplane {
                    let same_mp = self
                        .recent_fatals
                        .iter()
                        .filter(|&&(_, m)| m == Some(mp))
                        .count();
                    for i in 0..self.tables.loc.len() {
                        let (k, id) = self.tables.loc[i];
                        if k > same_mp {
                            break; // ascending k
                        }
                        if self.warn_allowed(time, id, None) {
                            let Rule::Location(l) = &self.repo.get(id).rule else {
                                unreachable!()
                            };
                            let provenance = Provenance {
                                repo_version: self.repo_version,
                                probability: Some(l.probability),
                                training: self.repo.get(id).training_counts,
                                precursors: self.location_precursors(mp),
                                ..Provenance::default()
                            };
                            self.issue(
                                warnings,
                                time,
                                id,
                                RuleKind::Location,
                                None,
                                time + self.window,
                                provenance,
                            );
                        }
                    }
                }
            }
            // The failure closes the current gap; re-arm the distribution
            // rules for the next one and resolve their pending warnings.
            self.last_fatal = Some(time);
            self.dist_armed = true;
            for i in 0..self.dist_thresholds.len() {
                let id = self.dist_thresholds[i].0;
                self.active.clear(id.0 as usize);
            }
        } else {
            // Insert first so single-item antecedents match their own
            // arrival.
            self.recent.push_back((time, type_id));
            self.present.add(type_id);

            let (cs, ce) = self
                .tables
                .assoc_index
                .get(type_id.0 as usize)
                .copied()
                .unwrap_or((0, 0));
            // Scan phase: straight-line presence tests, hits buffered.
            // Gating and issuing run afterwards in the same candidate
            // order, so intra-event suppression (a second rule
            // predicting an already-warned fatal) behaves exactly like
            // the retired check-then-issue interleaving.
            let mut hits = std::mem::take(&mut self.match_scratch);
            hits.clear();
            for e in &self.tables.assoc[cs as usize..ce as usize] {
                let hit = (self.present.word(e.w0) & e.m0 == e.m0)
                    && (self.present.word(e.w1) & e.m1 == e.m1);
                if hit
                    && (e.start == e.end
                        || self.tables.pairs[e.start as usize..e.end as usize]
                            .iter()
                            .all(|&(w, m)| self.present.word(w) & m == m))
                {
                    hits.push((e.id, e.fatal));
                }
            }
            for &(id, fatal_ty) in &hits {
                if self.warn_allowed(time, id, Some(fatal_ty)) {
                    let Rule::Association(a) = &self.repo.get(id).rule else {
                        unreachable!()
                    };
                    let provenance = Provenance {
                        repo_version: self.repo_version,
                        support: Some(a.support),
                        confidence: Some(a.confidence),
                        training: self.repo.get(id).training_counts,
                        precursors: self.assoc_precursors(&a.antecedent),
                        ..Provenance::default()
                    };
                    self.issue(
                        warnings,
                        time,
                        id,
                        RuleKind::Association,
                        Some(fatal_ty),
                        time + self.window,
                        provenance,
                    );
                }
            }
            self.match_scratch = hits;

            // Distribution fallback: only when nothing else fired for
            // this event.
            if warnings.len() == issued_before && self.dist_armed {
                if let Some(last) = self.last_fatal {
                    let elapsed = time - last;
                    for i in 0..self.dist_thresholds.len() {
                        let (id, trigger, expire) = self.dist_thresholds[i];
                        if elapsed >= trigger {
                            let deadline = (last + expire).max(time + self.window);
                            if self.warn_allowed(time, id, None) {
                                let Rule::Distribution(d) = &self.repo.get(id).rule else {
                                    unreachable!()
                                };
                                let provenance = Provenance {
                                    repo_version: self.repo_version,
                                    probability: Some(d.threshold),
                                    training: self.repo.get(id).training_counts,
                                    precursors: vec![Precursor {
                                        time: last,
                                        event_type: None,
                                    }],
                                    ..Provenance::default()
                                };
                                self.issue(
                                    warnings,
                                    time,
                                    id,
                                    RuleKind::Distribution,
                                    None,
                                    deadline,
                                    provenance,
                                );
                            }
                            self.dist_armed = false;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Feeds a slice of events through the batch path, collecting all
    /// warnings: the slice is projected once into the predictor-owned
    /// struct-of-arrays scratch and swept by
    /// [`Self::observe_batch`] — zero per-event allocation, and after
    /// the first chunk the scratch columns stop reallocating too.
    pub fn observe_all(&mut self, events: &[CleanEvent]) -> Vec<Warning> {
        let mut batch = std::mem::take(&mut self.batch_scratch);
        batch.clear();
        batch.extend_from_events(events);
        let mut out = Vec::new();
        self.observe_batch(&batch, &mut out);
        self.batch_scratch = batch;
        out
    }

    /// The retired per-event serving loop, frozen as the bench baseline
    /// and parity oracle.
    ///
    /// This is the pre-batch implementation verbatim — one `Vec` per
    /// event, a `u64` division per latency-sample check, candidate
    /// probing through the repository indexes rather than the flattened
    /// tables. Do not optimize it: its whole purpose is to stay what
    /// the engine used to be, so `BENCH_predictor.json`'s speedup is
    /// measured against a fixed point and the parity suite checks the
    /// live paths against unchanged semantics. It shares every piece of
    /// mutable window state with the live engine (the flattened tables
    /// are read-only projections), so the paths can even be interleaved.
    pub fn observe_all_per_event(&mut self, events: &[CleanEvent]) -> Vec<Warning> {
        let mut out = Vec::new();
        for ev in events {
            out.extend(self.observe_retired(ev));
        }
        out
    }

    /// Frozen pre-batch `observe` (see [`Self::observe_all_per_event`]).
    fn observe_retired(&mut self, ev: &CleanEvent) -> Vec<Warning> {
        let timed = self.latency_sample_every != 0
            && self
                .metrics
                .events_observed
                .is_multiple_of(self.latency_sample_every as u64);
        let start = timed.then(Instant::now);
        self.metrics.events_observed += 1;
        if ev.fatal {
            self.metrics.fatals_observed += 1;
        }

        let warnings = self.match_event_retired(ev);

        self.metrics.warnings_issued += warnings.len() as u64;
        let occupancy = (self.recent.len() + self.recent_fatals.len()) as u64;
        if occupancy > self.metrics.window_peak {
            self.metrics.window_peak = occupancy;
        }
        if let Some(t) = start {
            self.metrics
                .match_latency_us
                .record(t.elapsed().as_secs_f64() * 1e6);
        }
        warnings
    }

    /// Frozen pre-batch matcher (see [`Self::observe_all_per_event`]):
    /// walks the repository's rule indexes with the original
    /// id → stored-rule → antecedent pointer chase.
    fn match_event_retired(&mut self, ev: &CleanEvent) -> Vec<Warning> {
        self.evict_scan(ev.time);
        let mut warnings = Vec::new();

        if ev.fatal {
            let midplane = ev.location.midplane();
            self.recent_fatals.push_back((ev.time, midplane));
            let count = self.recent_fatals.len();
            for &id in self.repo.statistical_rules() {
                let Rule::Statistical(s) = &self.repo.get(id).rule else {
                    unreachable!()
                };
                if s.k > count {
                    break; // ascending k: no further rule can match
                }
                if self.warn_allowed(ev.time, id, None) {
                    let provenance = Provenance {
                        repo_version: self.repo_version,
                        probability: Some(s.probability),
                        training: self.repo.get(id).training_counts,
                        precursors: self.fatal_precursors(),
                        ..Provenance::default()
                    };
                    self.issue(
                        &mut warnings,
                        ev.time,
                        id,
                        RuleKind::Statistical,
                        None,
                        ev.time + self.window,
                        provenance,
                    );
                }
            }
            // Location-recurrence rules: same-midplane fatal count.
            if !self.repo.location_rules().is_empty() {
                if let Some(mp) = midplane {
                    let same_mp = self
                        .recent_fatals
                        .iter()
                        .filter(|&&(_, m)| m == Some(mp))
                        .count();
                    for &id in self.repo.location_rules() {
                        let Rule::Location(l) = &self.repo.get(id).rule else {
                            unreachable!()
                        };
                        if l.k > same_mp {
                            break; // ascending k
                        }
                        if self.warn_allowed(ev.time, id, None) {
                            let provenance = Provenance {
                                repo_version: self.repo_version,
                                probability: Some(l.probability),
                                training: self.repo.get(id).training_counts,
                                precursors: self.location_precursors(mp),
                                ..Provenance::default()
                            };
                            self.issue(
                                &mut warnings,
                                ev.time,
                                id,
                                RuleKind::Location,
                                None,
                                ev.time + self.window,
                                provenance,
                            );
                        }
                    }
                }
            }
            // The failure closes the current gap; re-arm the distribution
            // rules for the next one and resolve their pending warnings.
            self.last_fatal = Some(ev.time);
            self.dist_armed = true;
            for i in 0..self.dist_thresholds.len() {
                let id = self.dist_thresholds[i].0;
                self.active.clear(id.0 as usize);
            }
        } else {
            // Insert first so single-item antecedents match their own
            // arrival.
            self.recent.push_back((ev.time, ev.type_id));
            self.present.add(ev.type_id);

            for &id in self.repo.rules_triggered_by(ev.type_id) {
                let Rule::Association(a) = &self.repo.get(id).rule else {
                    unreachable!()
                };
                if a.antecedent.iter().all(|&item| self.present.contains(item))
                    && self.warn_allowed(ev.time, id, Some(a.fatal))
                {
                    let provenance = Provenance {
                        repo_version: self.repo_version,
                        support: Some(a.support),
                        confidence: Some(a.confidence),
                        training: self.repo.get(id).training_counts,
                        precursors: self.assoc_precursors(&a.antecedent),
                        ..Provenance::default()
                    };
                    self.issue(
                        &mut warnings,
                        ev.time,
                        id,
                        RuleKind::Association,
                        Some(a.fatal),
                        ev.time + self.window,
                        provenance,
                    );
                }
            }

            // Distribution fallback: only when nothing else fired.
            if warnings.is_empty() && self.dist_armed {
                if let Some(last) = self.last_fatal {
                    let elapsed = ev.time - last;
                    for i in 0..self.dist_thresholds.len() {
                        let (id, trigger, expire) = self.dist_thresholds[i];
                        if elapsed >= trigger {
                            let deadline = (last + expire).max(ev.time + self.window);
                            if self.warn_allowed(ev.time, id, None) {
                                let Rule::Distribution(d) = &self.repo.get(id).rule else {
                                    unreachable!()
                                };
                                let provenance = Provenance {
                                    repo_version: self.repo_version,
                                    probability: Some(d.threshold),
                                    training: self.repo.get(id).training_counts,
                                    precursors: vec![Precursor {
                                        time: last,
                                        event_type: None,
                                    }],
                                    ..Provenance::default()
                                };
                                self.issue(
                                    &mut warnings,
                                    ev.time,
                                    id,
                                    RuleKind::Distribution,
                                    None,
                                    deadline,
                                    provenance,
                                );
                            }
                            self.dist_armed = false;
                            break;
                        }
                    }
                }
            }
        }
        warnings
    }

    /// Sweeps a prebuilt [`EventBatch`] against the rule tables,
    /// appending warnings to `out`.
    ///
    /// Semantically identical to calling [`Self::observe`] per event
    /// (the parity suite holds it to that bit-for-bit), but the serving
    /// machinery is amortized across the chunk: the latency-sample
    /// check is a countdown instead of a `u64` division per event, the
    /// hot counters accumulate in locals and hit `self.metrics` once
    /// per batch, warnings append straight into `out` with no
    /// per-event `Vec` round trip, and the match loop reads ~11-byte
    /// column rows instead of 32-byte event structs.
    pub fn observe_batch(&mut self, batch: &EventBatch, out: &mut Vec<Warning>) {
        let (t_ms, type_ids, fatals, midplanes) = batch.columns();
        let every = self.latency_sample_every as u64;
        // Events until the next sampled one, preserving the per-event
        // cadence `events_observed % every == 0` exactly.
        let mut until_sample = if every == 0 {
            u64::MAX
        } else {
            match self.metrics.events_observed % every {
                0 => 0,
                r => every - r,
            }
        };
        let mut fatal_count = 0u64;
        let mut peak = self.metrics.window_peak;
        let issued_before = out.len();
        // The window bookkeeping lives in registers for the whole sweep:
        // `horizon` is the earliest time at which any entry could leave
        // the window (so the common case is one compare, no deque
        // probes), `occ` mirrors `recent.len() + recent_fatals.len()`
        // (each event pushes exactly one entry; evictions are counted
        // out by `evict_scan`'s return value).
        let window = self.window;
        let mut horizon = self.horizon_from_fronts();
        let mut occ = (self.recent.len() + self.recent_fatals.len()) as u64;
        // Zipped column iteration: one induction variable, no per-column
        // bounds checks inside the sweep.
        let rows = t_ms
            .iter()
            .zip(type_ids)
            .zip(fatals)
            .zip(midplanes)
            .map(|(((&t, &ty), &fatal), &mp)| (t, ty, fatal, mp));
        for (t, ty, fatal, mp) in rows {
            let timed = every != 0 && until_sample == 0;
            let start = timed.then(Instant::now);
            if timed {
                until_sample = every;
            }
            until_sample = until_sample.wrapping_sub(1);

            let time = Timestamp(t);
            if time > horizon {
                occ -= self.evict_scan(time) as u64;
                horizon = self.horizon_from_fronts();
            }
            fatal_count += fatal as u64;
            self.match_core(
                time,
                EventTypeId(ty),
                fatal,
                if fatal { decode_midplane(mp) } else { None },
                out,
            );
            // This event pushed exactly one window entry at `time`.
            horizon = horizon.min(time + window);
            occ += 1;
            if occ > peak {
                peak = occ;
            }
            if let Some(t) = start {
                self.metrics
                    .match_latency_us
                    .record(t.elapsed().as_secs_f64() * 1e6);
            }
        }
        self.metrics.events_observed += t_ms.len() as u64;
        self.metrics.fatals_observed += fatal_count;
        self.metrics.warnings_issued += (out.len() - issued_before) as u64;
        self.metrics.window_peak = peak;
    }

    /// Feeds events without recording warnings (state warm-up across a
    /// retraining boundary). Runs through the batch path.
    pub fn warm_up(&mut self, events: &[CleanEvent]) {
        let _ = self.observe_all(events);
    }

    /// The rate-limiting gate: whether `rule` (and its predicted target,
    /// if any) may issue a warning at `now`. Counts suppressed and
    /// expired candidates; callers only build provenance — the one
    /// allocation of the warn path — after this returns `true`.
    fn warn_allowed(&mut self, now: Timestamp, rule: RuleId, predicted: Option<EventTypeId>) -> bool {
        if let Some(pending) = self.active.get(rule.0 as usize) {
            if pending > now {
                self.metrics.warnings_suppressed += 1;
                return false; // previous warning from this rule still pending
            }
            // The previous warning's deadline passed without this rule
            // being re-triggered in time: it lapsed unfulfilled.
            self.metrics.warnings_expired += 1;
        }
        if let Some(target) = predicted {
            if let Some(pending) = self.active_targets.get(target.0 as usize) {
                if pending > now {
                    self.metrics.warnings_suppressed += 1;
                    return false; // this failure is already being warned about
                }
            }
        }
        true
    }

    /// Issues a warning (the caller already passed [`Self::warn_allowed`]).
    #[allow(clippy::too_many_arguments)]
    fn issue(
        &mut self,
        warnings: &mut Vec<Warning>,
        now: Timestamp,
        rule: RuleId,
        kind: RuleKind,
        predicted: Option<EventTypeId>,
        deadline: Timestamp,
        provenance: Provenance,
    ) {
        if let Some(target) = predicted {
            self.active_targets.set(target.0 as usize, deadline);
        }
        self.active.set(rule.0 as usize, deadline);
        warnings.push(Warning {
            id: WarningId::new(self.repo_version, rule, now),
            issued_at: now,
            deadline,
            rule,
            kind,
            predicted,
            provenance,
        });
    }

    /// The latest in-window occurrence of each antecedent item — the
    /// evidence an association rule fired on.
    fn assoc_precursors(&self, antecedent: &[EventTypeId]) -> Vec<Precursor> {
        let mut out = Vec::with_capacity(antecedent.len().min(MAX_PRECURSORS));
        for &item in antecedent.iter().take(MAX_PRECURSORS) {
            if let Some(&(time, _)) = self.recent.iter().rev().find(|&&(_, ty)| ty == item) {
                out.push(Precursor {
                    time,
                    event_type: Some(item),
                });
            }
        }
        out.sort_by_key(|p| p.time);
        out
    }

    /// The in-window fatal arrivals a statistical rule counted, oldest
    /// first.
    fn fatal_precursors(&self) -> Vec<Precursor> {
        let skip = self.recent_fatals.len().saturating_sub(MAX_PRECURSORS);
        self.recent_fatals
            .iter()
            .skip(skip)
            .map(|&(time, _)| Precursor {
                time,
                event_type: None,
            })
            .collect()
    }

    /// The in-window same-midplane fatal arrivals a location rule
    /// counted, oldest first.
    fn location_precursors(&self, mp: (u8, u8)) -> Vec<Precursor> {
        let mut out: Vec<Precursor> = self
            .recent_fatals
            .iter()
            .filter(|&&(_, m)| m == Some(mp))
            .map(|&(time, _)| Precursor {
                time,
                event_type: None,
            })
            .collect();
        let skip = out.len().saturating_sub(MAX_PRECURSORS);
        out.drain(..skip);
        out
    }

    /// Pops every window entry older than `now - window`, returning how
    /// many entries were removed (the batch sweep tracks its occupancy
    /// counter from it; per-event callers discard it).
    fn evict_scan(&mut self, now: Timestamp) -> usize {
        let cutoff = now - self.window;
        let mut popped = 0usize;
        while let Some(&(t, ty)) = self.recent.front() {
            if t < cutoff {
                self.recent.pop_front();
                self.present.remove(ty);
                popped += 1;
            } else {
                break;
            }
        }
        while let Some(&(t, _)) = self.recent_fatals.front() {
            if t < cutoff {
                self.recent_fatals.pop_front();
                popped += 1;
            } else {
                break;
            }
        }
        popped
    }

    /// The time up to which no window entry can need eviction: the
    /// earliest entry's time plus the window, or `i64::MAX` when the
    /// window is empty. The batch sweep holds this in a register so the
    /// common no-eviction case is one compare with no deque probes.
    fn horizon_from_fronts(&self) -> Timestamp {
        let f1 = self.recent.front().map(|&(t, _)| t);
        let f2 = self.recent_fatals.front().map(|&(t, _)| t);
        match (f1, f2) {
            (Some(a), Some(b)) => a.min(b) + self.window,
            (Some(a), None) => a + self.window,
            (None, Some(b)) => b + self.window,
            (None, None) => Timestamp(i64::MAX),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AssociationRule, DistributionRule, StatisticalRule};
    use dml_stats::{FittedModel, Weibull};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    fn assoc_repo() -> KnowledgeRepository {
        KnowledgeRepository::new(vec![Rule::Association(AssociationRule {
            antecedent: vec![EventTypeId(1), EventTypeId(2)],
            fatal: EventTypeId(100),
            support: 0.1,
            confidence: 0.9,
        })])
    }

    #[test]
    fn association_rule_fires_when_antecedent_completes() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        assert!(
            p.observe(&ev(0, 1, false)).is_empty(),
            "incomplete antecedent"
        );
        let w = p.observe(&ev(50, 2, false));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, RuleKind::Association);
        assert_eq!(w[0].predicted, Some(EventTypeId(100)));
        assert_eq!(w[0].deadline, Timestamp::from_secs(350));
    }

    #[test]
    fn association_rule_respects_window() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 1, false));
        // Type 1 is stale (> 300 s old) by the time type 2 arrives.
        assert!(p.observe(&ev(400, 2, false)).is_empty());
    }

    #[test]
    fn association_warning_rate_limited() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 1, false));
        assert_eq!(p.observe(&ev(10, 2, false)).len(), 1);
        // Re-completions within the pending window do not re-warn…
        assert!(p.observe(&ev(20, 2, false)).is_empty());
        assert!(p.observe(&ev(150, 1, false)).is_empty());
        // …but after the deadline passes the rule may fire again.
        let w = p.observe(&ev(400, 2, false));
        assert_eq!(
            w.len(),
            1,
            "antecedent(1@150, 2@400) within window, pending expired"
        );
    }

    #[test]
    fn statistical_rule_counts_fatals_in_window() {
        let repo = KnowledgeRepository::new(vec![Rule::Statistical(StatisticalRule {
            k: 3,
            probability: 0.95,
        })]);
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        assert!(p.observe(&ev(0, 9, true)).is_empty());
        assert!(p.observe(&ev(100, 9, true)).is_empty());
        let w = p.observe(&ev(200, 9, true)); // third fatal within 300 s
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, RuleKind::Statistical);
        // Fatals spread out never accumulate to 3.
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        for i in 0..10 {
            assert!(p.observe(&ev(i * 1000, 9, true)).is_empty());
        }
    }

    #[test]
    fn distribution_rule_one_warning_per_gap() {
        let model = FittedModel::Weibull(Weibull::new(1.0, 1000.0)); // F(t)=1-e^{-t/1000}
        let rule = DistributionRule {
            model,
            threshold: 0.6,
            expire_quantile: 0.98,
        };
        let trigger = rule.trigger_elapsed(); // ≈ 916 s
        assert!((trigger.as_secs() - 916).abs() <= 1);
        let repo = KnowledgeRepository::new(vec![Rule::Distribution(rule)]);
        let mut p = Predictor::new(&repo, Duration::from_secs(300));

        // No last failure yet → never fires.
        assert!(p.observe(&ev(100, 1, false)).is_empty());
        // A fatal starts the gap clock.
        let _ = p.observe(&ev(200, 9, true));
        // Non-fatal before the trigger point: silence.
        assert!(p.observe(&ev(900, 1, false)).is_empty());
        // Past the trigger point: exactly one warning for this gap.
        let w = p.observe(&ev(1200, 1, false));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, RuleKind::Distribution);
        // Deadline reaches to the expiry quantile of the gap.
        assert!(w[0].deadline > w[0].issued_at);
        assert!(p.observe(&ev(1300, 1, false)).is_empty(), "one per gap");
        // A new fatal re-arms it.
        let _ = p.observe(&ev(2000, 9, true));
        let w = p.observe(&ev(2000 + 1000, 1, false));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn distribution_only_consulted_when_others_silent() {
        let model = FittedModel::Weibull(Weibull::new(1.0, 10.0)); // triggers almost immediately
        let repo = KnowledgeRepository::new(vec![
            Rule::Association(AssociationRule {
                antecedent: vec![EventTypeId(1)],
                fatal: EventTypeId(100),
                support: 0.1,
                confidence: 0.9,
            }),
            Rule::Distribution(DistributionRule {
                model,
                threshold: 0.6,
                expire_quantile: 0.98,
            }),
        ]);
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 9, true));
        // Type 1 completes the association antecedent AND the elapsed time
        // is past the distribution trigger — only the association fires.
        let w = p.observe(&ev(100, 1, false));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, RuleKind::Association);
        // A different non-fatal type leaves the association silent, so the
        // distribution fallback fires.
        let w = p.observe(&ev(110, 2, false));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].kind, RuleKind::Distribution);
    }

    #[test]
    fn warm_up_builds_state_silently() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        p.warm_up(&[ev(0, 1, false)]);
        // Antecedent half-filled during warm-up; completion fires now.
        let w = p.observe(&ev(50, 2, false));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let repo = assoc_repo();
        // A stream that leaves a half-filled antecedent AND a pending
        // warning in flight at the cut point.
        let prefix = [ev(0, 1, false), ev(10, 2, false), ev(60, 1, false)];
        let suffix = [
            ev(80, 2, false),  // re-completes while pending → rate-limited
            ev(400, 1, false), // pending expired by now
            ev(420, 2, false), // fresh completion → warns again
        ];

        let mut continuous = Predictor::new(&repo, Duration::from_secs(300));
        let mut before = Vec::new();
        for e in &prefix {
            before.extend(continuous.observe(e));
        }
        assert_eq!(before.len(), 1, "warning pending at the cut");

        let state = continuous.snapshot();
        let mut restored = Predictor::restore(&repo, Duration::from_secs(300), state.clone());
        assert_eq!(restored.snapshot(), state, "restore is lossless");

        let after_continuous = continuous.observe_all(&suffix);
        let after_restored = restored.observe_all(&suffix);
        assert_eq!(after_continuous, after_restored);
        assert_eq!(after_restored.len(), 1, "rate limit survived the restart");
    }

    #[test]
    fn snapshot_restores_fatal_state_too() {
        let model = FittedModel::Weibull(Weibull::new(1.0, 1000.0));
        let repo = KnowledgeRepository::new(vec![
            Rule::Statistical(StatisticalRule {
                k: 3,
                probability: 0.95,
            }),
            Rule::Distribution(DistributionRule {
                model,
                threshold: 0.6,
                expire_quantile: 0.98,
            }),
        ]);
        let mut a = Predictor::new(&repo, Duration::from_secs(300));
        let _ = a.observe_all(&[ev(0, 9, true), ev(100, 9, true)]);
        let mut b = Predictor::restore(&repo, Duration::from_secs(300), a.snapshot());
        // The third fatal within the window fires the statistical rule in
        // both; the gap clock and armed flag also survive.
        let suffix = [ev(200, 9, true), ev(1300, 1, false), ev(1400, 1, false)];
        assert_eq!(a.observe_all(&suffix), b.observe_all(&suffix));
    }

    #[test]
    fn metrics_count_the_hot_path() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        p.set_latency_sampling(1); // time every event
        assert_eq!(p.metrics().rules, 1);
        assert_eq!(p.metrics().e_list_entries, 2, "antecedent {{1, 2}}");
        assert_eq!(p.metrics().f_list_entries, 1);

        let _ = p.observe_all(&[
            ev(0, 1, false),
            ev(10, 2, false), // fires
            ev(20, 2, false), // suppressed: warning pending
            ev(30, 9, true),
            ev(400, 1, false),
            ev(410, 2, false), // previous warning expired; fires again
        ]);
        let m = p.metrics().clone();
        assert_eq!(m.events_observed, 6);
        assert_eq!(m.fatals_observed, 1);
        assert_eq!(m.warnings_issued, 2);
        assert_eq!(m.warnings_suppressed, 1);
        assert_eq!(m.warnings_expired, 1);
        assert!(m.window_peak >= 3, "peak {}", m.window_peak);
        assert_eq!(m.match_latency_us.count(), 6);

        // Reset clears counters but keeps the repository gauges.
        p.reset_metrics();
        assert_eq!(p.metrics().events_observed, 0);
        assert_eq!(p.metrics().rules, 1);

        // Merge folds block counters and keeps the latest rule gauges.
        let mut total = PredictorMetrics::default();
        total.merge(&m);
        total.merge(&m);
        assert_eq!(total.events_observed, 12);
        assert_eq!(total.match_latency_us.count(), 12);
        assert_eq!(total.rules, 1);
        let mut q = Predictor::new(&repo, Duration::from_secs(300));
        q.set_latency_sampling(0); // timing off: no histogram samples
        let _ = q.observe_all(&[ev(0, 1, false), ev(10, 2, false)]);
        assert_eq!(q.metrics().match_latency_us.count(), 0);
        assert_eq!(q.metrics().warnings_issued, 1);
    }

    #[test]
    fn metrics_export_covers_the_predict_namespace() {
        use dml_obs::MetricSource;
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe_all(&[ev(0, 1, false), ev(10, 2, false)]);
        let mut r = dml_obs::Registry::new();
        p.metrics().export(&mut r);
        assert_eq!(r.counter("predict.events_observed"), Some(2));
        assert_eq!(r.counter("predict.warnings_issued"), Some(1));
        assert_eq!(r.gauge("predict.rules"), Some(1.0));
        assert!(r.histogram("predict.match_latency_us").is_some());
    }

    #[test]
    fn warning_ids_render_parse_and_serialize_round_trip() {
        let id = WarningId::new(3, RuleId(17), Timestamp::from_secs(42));
        assert_eq!(id.to_string(), "w3-r17-42000");
        assert_eq!("w3-r17-42000".parse::<WarningId>().unwrap(), id);
        // Negative timestamps (pre-epoch warm-up) survive the format.
        let neg = WarningId::new(1, RuleId(0), Timestamp(-5));
        assert_eq!(neg.to_string().parse::<WarningId>().unwrap(), neg);
        // Serialized as the readable string, not a struct.
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"w3-r17-42000\"");
        assert_eq!(serde_json::from_str::<WarningId>(&json).unwrap(), id);
        assert!("r17-42000".parse::<WarningId>().is_err());
        assert!("w3-r17".parse::<WarningId>().is_err());
    }

    #[test]
    fn association_warning_carries_provenance() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 1, false));
        let w = p.observe(&ev(50, 2, false));
        assert_eq!(w.len(), 1);
        let prov = &w[0].provenance;
        assert_eq!(prov.repo_version, repo.version());
        assert_eq!(prov.support, Some(0.1));
        assert_eq!(prov.confidence, Some(0.9));
        assert_eq!(prov.probability, None);
        // Both antecedent items appear as precursors, oldest first.
        assert_eq!(
            prov.precursors,
            vec![
                Precursor {
                    time: Timestamp::from_secs(0),
                    event_type: Some(EventTypeId(1)),
                },
                Precursor {
                    time: Timestamp::from_secs(50),
                    event_type: Some(EventTypeId(2)),
                },
            ]
        );
        assert_eq!(w[0].id, WarningId::new(repo.version(), w[0].rule, w[0].issued_at));
    }

    #[test]
    fn statistical_warning_lists_counted_fatals() {
        let repo = KnowledgeRepository::new(vec![Rule::Statistical(StatisticalRule {
            k: 2,
            probability: 0.75,
        })]);
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 9, true));
        let w = p.observe(&ev(100, 9, true));
        assert_eq!(w.len(), 1);
        let prov = &w[0].provenance;
        assert_eq!(prov.probability, Some(0.75));
        assert_eq!(prov.support, None);
        let times: Vec<i64> = prov.precursors.iter().map(|p| p.time.as_secs()).collect();
        assert_eq!(times, [0, 100]);
        assert!(prov.precursors.iter().all(|p| p.event_type.is_none()));
    }

    #[test]
    fn pre_provenance_warning_json_still_deserializes() {
        // Warning JSONL written before the provenance schema carries
        // neither `id` nor `provenance`; both must default.
        let json = r#"{"issued_at":1000,"deadline":301000,"rule":0,
                       "kind":"Association","predicted":100}"#;
        let w: Warning = serde_json::from_str(json).unwrap();
        assert_eq!(w.id, WarningId::default());
        assert_eq!(w.provenance, Provenance::default());
        assert_eq!(w.rule, RuleId(0));
    }

    #[test]
    fn repo_version_flows_into_ids_and_provenance() {
        let mut repo = assoc_repo();
        repo.set_version(7);
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 1, false));
        let w = p.observe(&ev(50, 2, false));
        assert_eq!(w[0].id.repo_version, 7);
        assert_eq!(w[0].provenance.repo_version, 7);
    }

    #[test]
    fn warning_flight_event_matches_fields() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe(&ev(0, 1, false));
        let w = p.observe(&ev(50, 2, false)).remove(0);
        let dml_obs::FlightEvent::WarningIssued {
            id,
            rule,
            learner,
            deadline_ms,
            predicted,
            support,
            precursors,
            ..
        } = w.flight_event()
        else {
            panic!("expected a WarningIssued record")
        };
        assert_eq!(id, w.id.to_string());
        assert_eq!(rule, w.rule.0);
        assert_eq!(learner, "association");
        assert_eq!(deadline_ms, w.deadline.0);
        assert_eq!(predicted, Some(100));
        assert_eq!(support, Some(0.1));
        assert_eq!(precursors.len(), 2);
    }

    #[test]
    fn observe_all_collects_in_order() {
        let repo = assoc_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let warnings = p.observe_all(&[
            ev(0, 1, false),
            ev(10, 2, false),
            ev(500, 1, false),
            ev(510, 2, false),
        ]);
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].issued_at < warnings[1].issued_at);
    }
}
