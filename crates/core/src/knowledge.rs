//! The knowledge repository.
//!
//! Holds the rules the predictor consults, with the two lookup lists of
//! Algorithm 2 prebuilt:
//!
//! * `E-List` — for each event type, the association rules whose
//!   antecedent contains it (consulted on non-fatal arrivals);
//! * `F-List` — for each fatal type, the association rules predicting it.
//!
//! Both lists are **dense tables indexed by the raw event-type id**: the
//! catalog space is small (219 low-level types for Blue Gene/L, `u16`
//! ids), so `lists[type_id]` replaces a `HashMap` probe with one bounds
//! check and an indexed load on the predictor's per-event hot path.
//!
//! The repository also supports the churn accounting of Fig. 12: diffing
//! two snapshots by structural rule identity.

use crate::evaluation::Accuracy;
use crate::rules::{Rule, RuleId, RuleIdentity, RuleKind};
use raslog::EventTypeId;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A rule plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRule {
    /// Repository-local id.
    pub id: RuleId,
    /// The rule.
    pub rule: Rule,
    /// Training-set accuracy measured by the reviser, when it ran.
    pub training_counts: Option<Accuracy>,
}

/// Rule-set difference between two retraining snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleChurn {
    /// Rules present in both snapshots (by identity).
    pub unchanged: usize,
    /// Rules only in the new snapshot.
    pub added: usize,
    /// Rules only in the old snapshot.
    pub removed: usize,
}

/// A dense `event type id → rule ids` index. Slot `t` holds the rules
/// for `EventTypeId(t)`; types past the table end simply have no rules.
#[derive(Debug, Clone, Default)]
struct TypeIndex {
    lists: Vec<Vec<RuleId>>,
    entries: usize,
}

impl TypeIndex {
    fn push(&mut self, ty: EventTypeId, id: RuleId) {
        let slot = ty.0 as usize;
        if slot >= self.lists.len() {
            self.lists.resize_with(slot + 1, Vec::new);
        }
        self.lists[slot].push(id);
        self.entries += 1;
    }

    #[inline]
    fn get(&self, ty: EventTypeId) -> &[RuleId] {
        self.lists
            .get(ty.0 as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// The rule store consulted by the predictor.
///
/// Serialized as just the rule list; the dense indices are rebuilt on
/// deserialization, so the wire format is independent of the index
/// layout.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "RepoWire", into = "RepoWire")]
pub struct KnowledgeRepository {
    rules: Vec<StoredRule>,
    /// Monotonic rule-set version stamped by the drivers (the number of
    /// trainings that produced this repository; 0 = unstamped). Warnings
    /// carry it as provenance, so a repository hot-swapped mid-run can
    /// still be matched to the warnings it issued.
    version: u64,
    /// Association rules indexed by antecedent item (dense `E-List`).
    e_list: TypeIndex,
    /// Association rules indexed by predicted fatal type (dense `F-List`).
    f_list: TypeIndex,
    /// Statistical rules, ascending `k`.
    statistical: Vec<RuleId>,
    /// Location-recurrence rules, ascending `k`.
    location: Vec<RuleId>,
    /// Distribution rules.
    distribution: Vec<RuleId>,
}

/// The serialized shape of a repository: rules plus version stamp.
#[derive(Serialize, Deserialize)]
struct RepoWire {
    rules: Vec<StoredRule>,
    /// Absent in repositories persisted before versioning → 0.
    #[serde(default)]
    version: u64,
}

impl From<RepoWire> for KnowledgeRepository {
    fn from(wire: RepoWire) -> Self {
        let mut repo = KnowledgeRepository::with_counts(
            wire.rules
                .into_iter()
                .map(|r| (r.rule, r.training_counts))
                .collect(),
        );
        repo.version = wire.version;
        repo
    }
}

impl From<KnowledgeRepository> for RepoWire {
    fn from(repo: KnowledgeRepository) -> Self {
        RepoWire {
            rules: repo.rules,
            version: repo.version,
        }
    }
}

impl KnowledgeRepository {
    /// Builds a repository from rules in ensemble order.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut repo = KnowledgeRepository::default();
        for rule in rules {
            repo.insert(rule, None);
        }
        repo.finish();
        repo
    }

    /// Builds a repository from rules with reviser counts attached.
    pub fn with_counts(rules: Vec<(Rule, Option<Accuracy>)>) -> Self {
        let mut repo = KnowledgeRepository::default();
        for (rule, counts) in rules {
            repo.insert(rule, counts);
        }
        repo.finish();
        repo
    }

    fn insert(&mut self, rule: Rule, training_counts: Option<Accuracy>) {
        let id = RuleId(u32::try_from(self.rules.len()).expect("too many rules"));
        match &rule {
            Rule::Association(a) => {
                for &item in &a.antecedent {
                    self.e_list.push(item, id);
                }
                self.f_list.push(a.fatal, id);
            }
            Rule::Statistical(_) => self.statistical.push(id),
            Rule::Location(_) => self.location.push(id),
            Rule::Distribution(_) => self.distribution.push(id),
        }
        self.rules.push(StoredRule {
            id,
            rule,
            training_counts,
        });
    }

    /// Sorts the count-triggered indices by `k` so the predictor can stop
    /// at the first non-matching rule.
    fn finish(&mut self) {
        self.statistical
            .sort_by_key(|&id| match &self.rules[id.0 as usize].rule {
                Rule::Statistical(s) => s.k,
                _ => usize::MAX,
            });
        self.location
            .sort_by_key(|&id| match &self.rules[id.0 as usize].rule {
                Rule::Location(l) => l.k,
                _ => usize::MAX,
            });
    }

    /// The rule-set version stamped by the driver (0 = unstamped).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamps the rule-set version. The drivers number repositories by
    /// training count, so versions match the churn-trace index.
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// The stored rule for `id`.
    pub fn get(&self, id: RuleId) -> &StoredRule {
        &self.rules[id.0 as usize]
    }

    /// All stored rules in insertion order.
    pub fn rules(&self) -> &[StoredRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules of each kind.
    pub fn count_by_kind(&self, kind: RuleKind) -> usize {
        self.rules.iter().filter(|r| r.rule.kind() == kind).count()
    }

    /// Association rules containing `item` in their antecedent.
    #[inline]
    pub fn rules_triggered_by(&self, item: EventTypeId) -> &[RuleId] {
        self.e_list.get(item)
    }

    /// Association rules predicting `fatal`.
    #[inline]
    pub fn rules_predicting(&self, fatal: EventTypeId) -> &[RuleId] {
        self.f_list.get(fatal)
    }

    /// Total `E-List` index entries (type → rule pairs), a proxy for the
    /// matcher's fan-out on non-fatal events.
    pub fn e_list_entries(&self) -> usize {
        self.e_list.entries
    }

    /// Total `F-List` index entries (fatal type → rule pairs).
    pub fn f_list_entries(&self) -> usize {
        self.f_list.entries
    }

    /// One past the largest event-type id indexed by either list (the
    /// size a dense per-type table must have to cover every rule).
    pub fn type_table_len(&self) -> usize {
        self.e_list.lists.len().max(self.f_list.lists.len())
    }

    /// Statistical rules in ascending `k` order.
    pub fn statistical_rules(&self) -> &[RuleId] {
        &self.statistical
    }

    /// Location-recurrence rules in ascending `k` order.
    pub fn location_rules(&self) -> &[RuleId] {
        &self.location
    }

    /// Distribution rules.
    pub fn distribution_rules(&self) -> &[RuleId] {
        &self.distribution
    }

    /// The set of structural identities in the repository.
    pub fn identities(&self) -> HashSet<RuleIdentity> {
        self.rules.iter().map(|r| r.rule.identity()).collect()
    }

    /// Diffs two snapshots by identity (Fig. 12's churn accounting).
    pub fn churn(old: &KnowledgeRepository, new: &KnowledgeRepository) -> RuleChurn {
        let old_ids = old.identities();
        let new_ids = new.identities();
        RuleChurn {
            unchanged: old_ids.intersection(&new_ids).count(),
            added: new_ids.difference(&old_ids).count(),
            removed: old_ids.difference(&new_ids).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AssociationRule, StatisticalRule};

    fn assoc(items: &[u16], fatal: u16) -> Rule {
        Rule::Association(AssociationRule {
            antecedent: items.iter().map(|&i| EventTypeId(i)).collect(),
            fatal: EventTypeId(fatal),
            support: 0.1,
            confidence: 0.9,
        })
    }

    fn stat(k: usize) -> Rule {
        Rule::Statistical(StatisticalRule {
            k,
            probability: 0.9,
        })
    }

    #[test]
    fn indices_route_lookups() {
        let repo = KnowledgeRepository::new(vec![
            assoc(&[1, 2], 100),
            assoc(&[2, 3], 101),
            stat(4),
            stat(2),
        ]);
        assert_eq!(repo.len(), 4);
        assert_eq!(repo.rules_triggered_by(EventTypeId(2)).len(), 2);
        assert_eq!(repo.rules_triggered_by(EventTypeId(1)).len(), 1);
        assert_eq!(repo.rules_triggered_by(EventTypeId(99)).len(), 0);
        assert_eq!(repo.rules_predicting(EventTypeId(100)).len(), 1);
        // Statistical rules come back ascending in k.
        let ks: Vec<usize> = repo
            .statistical_rules()
            .iter()
            .map(|&id| match &repo.get(id).rule {
                Rule::Statistical(s) => s.k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ks, vec![2, 4]);
    }

    #[test]
    fn dense_tables_cover_the_type_range() {
        let repo = KnowledgeRepository::new(vec![assoc(&[1, 7], 100), assoc(&[3], 218)]);
        assert_eq!(repo.e_list_entries(), 3);
        assert_eq!(repo.f_list_entries(), 2);
        // F-List reaches type 218 → table covers 219 slots.
        assert_eq!(repo.type_table_len(), 219);
        // Lookups far past the table end are empty, not a panic.
        assert!(repo.rules_triggered_by(EventTypeId(u16::MAX)).is_empty());
        assert!(repo.rules_predicting(EventTypeId(u16::MAX)).is_empty());
    }

    #[test]
    fn serde_round_trip_rebuilds_indices() {
        let repo = KnowledgeRepository::new(vec![
            assoc(&[1, 2], 100),
            assoc(&[2, 3], 101),
            stat(4),
            stat(2),
        ]);
        let json = serde_json::to_string(&repo).unwrap();
        let back: KnowledgeRepository = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rules(), repo.rules());
        assert_eq!(back.version(), repo.version());
        assert_eq!(
            back.rules_triggered_by(EventTypeId(2)),
            repo.rules_triggered_by(EventTypeId(2))
        );
        assert_eq!(back.statistical_rules(), repo.statistical_rules());
        assert_eq!(back.e_list_entries(), repo.e_list_entries());
        assert_eq!(back.f_list_entries(), repo.f_list_entries());
    }

    #[test]
    fn count_by_kind() {
        let repo = KnowledgeRepository::new(vec![assoc(&[1], 100), stat(2), stat(3)]);
        assert_eq!(repo.count_by_kind(RuleKind::Association), 1);
        assert_eq!(repo.count_by_kind(RuleKind::Statistical), 2);
        assert_eq!(repo.count_by_kind(RuleKind::Distribution), 0);
    }

    #[test]
    fn churn_accounting() {
        let old = KnowledgeRepository::new(vec![assoc(&[1, 2], 100), assoc(&[3], 101), stat(2)]);
        let new = KnowledgeRepository::new(vec![
            assoc(&[1, 2], 100), // unchanged
            assoc(&[4], 102),    // added
            stat(3),             // added (different k)
        ]);
        let churn = KnowledgeRepository::churn(&old, &new);
        assert_eq!(
            churn,
            RuleChurn {
                unchanged: 1,
                added: 2,
                removed: 2
            }
        );
    }

    #[test]
    fn churn_ignores_measure_changes() {
        let old = KnowledgeRepository::new(vec![assoc(&[1], 100)]);
        let mut r = assoc(&[1], 100);
        if let Rule::Association(a) = &mut r {
            a.confidence = 0.123;
        }
        let new = KnowledgeRepository::new(vec![r]);
        let churn = KnowledgeRepository::churn(&old, &new);
        assert_eq!(churn.unchanged, 1);
        assert_eq!(churn.added, 0);
    }

    #[test]
    fn version_round_trips_and_defaults_to_zero() {
        let mut repo = KnowledgeRepository::new(vec![stat(2)]);
        assert_eq!(repo.version(), 0);
        repo.set_version(5);
        let json = serde_json::to_string(&repo).unwrap();
        let back: KnowledgeRepository = serde_json::from_str(&json).unwrap();
        assert_eq!(back.version(), 5);
        // Pre-versioning wire format (no `version` key) still loads.
        let legacy: KnowledgeRepository = serde_json::from_str(r#"{"rules":[]}"#).unwrap();
        assert_eq!(legacy.version(), 0);
    }

    #[test]
    fn empty_repo() {
        let repo = KnowledgeRepository::default();
        assert!(repo.is_empty());
        assert!(repo.statistical_rules().is_empty());
        assert!(repo.distribution_rules().is_empty());
    }
}
