//! The knowledge repository.
//!
//! Holds the rules the predictor consults, with the two lookup lists of
//! Algorithm 2 prebuilt:
//!
//! * `E-List` — for each event type, the association rules whose
//!   antecedent contains it (consulted on non-fatal arrivals);
//! * `F-List` — for each fatal type, the association rules predicting it.
//!
//! The repository also supports the churn accounting of Fig. 12: diffing
//! two snapshots by structural rule identity.

use crate::evaluation::Accuracy;
use crate::rules::{Rule, RuleId, RuleIdentity, RuleKind};
use raslog::EventTypeId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A rule plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredRule {
    /// Repository-local id.
    pub id: RuleId,
    /// The rule.
    pub rule: Rule,
    /// Training-set accuracy measured by the reviser, when it ran.
    pub training_counts: Option<Accuracy>,
}

/// Rule-set difference between two retraining snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleChurn {
    /// Rules present in both snapshots (by identity).
    pub unchanged: usize,
    /// Rules only in the new snapshot.
    pub added: usize,
    /// Rules only in the old snapshot.
    pub removed: usize,
}

/// The rule store consulted by the predictor.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeRepository {
    rules: Vec<StoredRule>,
    /// Association rules indexed by antecedent item.
    e_list: HashMap<EventTypeId, Vec<RuleId>>,
    /// Association rules indexed by predicted fatal type.
    f_list: HashMap<EventTypeId, Vec<RuleId>>,
    /// Statistical rules, ascending `k`.
    statistical: Vec<RuleId>,
    /// Location-recurrence rules, ascending `k`.
    location: Vec<RuleId>,
    /// Distribution rules.
    distribution: Vec<RuleId>,
}

impl KnowledgeRepository {
    /// Builds a repository from rules in ensemble order.
    pub fn new(rules: Vec<Rule>) -> Self {
        let mut repo = KnowledgeRepository::default();
        for rule in rules {
            repo.insert(rule, None);
        }
        repo
    }

    /// Builds a repository from rules with reviser counts attached.
    pub fn with_counts(rules: Vec<(Rule, Option<Accuracy>)>) -> Self {
        let mut repo = KnowledgeRepository::default();
        for (rule, counts) in rules {
            repo.insert(rule, counts);
        }
        repo
    }

    fn insert(&mut self, rule: Rule, training_counts: Option<Accuracy>) {
        let id = RuleId(u32::try_from(self.rules.len()).expect("too many rules"));
        match &rule {
            Rule::Association(a) => {
                for &item in &a.antecedent {
                    self.e_list.entry(item).or_default().push(id);
                }
                self.f_list.entry(a.fatal).or_default().push(id);
            }
            Rule::Statistical(_) => self.statistical.push(id),
            Rule::Location(_) => self.location.push(id),
            Rule::Distribution(_) => self.distribution.push(id),
        }
        self.rules.push(StoredRule {
            id,
            rule,
            training_counts,
        });
        // Keep count-triggered rules sorted by k so the predictor can stop
        // at the first non-matching one.
        self.statistical
            .sort_by_key(|&id| match &self.rules[id.0 as usize].rule {
                Rule::Statistical(s) => s.k,
                _ => usize::MAX,
            });
        self.location
            .sort_by_key(|&id| match &self.rules[id.0 as usize].rule {
                Rule::Location(l) => l.k,
                _ => usize::MAX,
            });
    }

    /// The stored rule for `id`.
    pub fn get(&self, id: RuleId) -> &StoredRule {
        &self.rules[id.0 as usize]
    }

    /// All stored rules in insertion order.
    pub fn rules(&self) -> &[StoredRule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules of each kind.
    pub fn count_by_kind(&self, kind: RuleKind) -> usize {
        self.rules.iter().filter(|r| r.rule.kind() == kind).count()
    }

    /// Association rules containing `item` in their antecedent.
    pub fn rules_triggered_by(&self, item: EventTypeId) -> &[RuleId] {
        self.e_list.get(&item).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Association rules predicting `fatal`.
    pub fn rules_predicting(&self, fatal: EventTypeId) -> &[RuleId] {
        self.f_list.get(&fatal).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total `E-List` index entries (type → rule pairs), a proxy for the
    /// matcher's fan-out on non-fatal events.
    pub fn e_list_entries(&self) -> usize {
        self.e_list.values().map(Vec::len).sum()
    }

    /// Total `F-List` index entries (fatal type → rule pairs).
    pub fn f_list_entries(&self) -> usize {
        self.f_list.values().map(Vec::len).sum()
    }

    /// Statistical rules in ascending `k` order.
    pub fn statistical_rules(&self) -> &[RuleId] {
        &self.statistical
    }

    /// Location-recurrence rules in ascending `k` order.
    pub fn location_rules(&self) -> &[RuleId] {
        &self.location
    }

    /// Distribution rules.
    pub fn distribution_rules(&self) -> &[RuleId] {
        &self.distribution
    }

    /// The set of structural identities in the repository.
    pub fn identities(&self) -> HashSet<RuleIdentity> {
        self.rules.iter().map(|r| r.rule.identity()).collect()
    }

    /// Diffs two snapshots by identity (Fig. 12's churn accounting).
    pub fn churn(old: &KnowledgeRepository, new: &KnowledgeRepository) -> RuleChurn {
        let old_ids = old.identities();
        let new_ids = new.identities();
        RuleChurn {
            unchanged: old_ids.intersection(&new_ids).count(),
            added: new_ids.difference(&old_ids).count(),
            removed: old_ids.difference(&new_ids).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AssociationRule, StatisticalRule};

    fn assoc(items: &[u16], fatal: u16) -> Rule {
        Rule::Association(AssociationRule {
            antecedent: items.iter().map(|&i| EventTypeId(i)).collect(),
            fatal: EventTypeId(fatal),
            support: 0.1,
            confidence: 0.9,
        })
    }

    fn stat(k: usize) -> Rule {
        Rule::Statistical(StatisticalRule {
            k,
            probability: 0.9,
        })
    }

    #[test]
    fn indices_route_lookups() {
        let repo = KnowledgeRepository::new(vec![
            assoc(&[1, 2], 100),
            assoc(&[2, 3], 101),
            stat(4),
            stat(2),
        ]);
        assert_eq!(repo.len(), 4);
        assert_eq!(repo.rules_triggered_by(EventTypeId(2)).len(), 2);
        assert_eq!(repo.rules_triggered_by(EventTypeId(1)).len(), 1);
        assert_eq!(repo.rules_triggered_by(EventTypeId(99)).len(), 0);
        assert_eq!(repo.rules_predicting(EventTypeId(100)).len(), 1);
        // Statistical rules come back ascending in k.
        let ks: Vec<usize> = repo
            .statistical_rules()
            .iter()
            .map(|&id| match &repo.get(id).rule {
                Rule::Statistical(s) => s.k,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ks, vec![2, 4]);
    }

    #[test]
    fn count_by_kind() {
        let repo = KnowledgeRepository::new(vec![assoc(&[1], 100), stat(2), stat(3)]);
        assert_eq!(repo.count_by_kind(RuleKind::Association), 1);
        assert_eq!(repo.count_by_kind(RuleKind::Statistical), 2);
        assert_eq!(repo.count_by_kind(RuleKind::Distribution), 0);
    }

    #[test]
    fn churn_accounting() {
        let old = KnowledgeRepository::new(vec![assoc(&[1, 2], 100), assoc(&[3], 101), stat(2)]);
        let new = KnowledgeRepository::new(vec![
            assoc(&[1, 2], 100), // unchanged
            assoc(&[4], 102),    // added
            stat(3),             // added (different k)
        ]);
        let churn = KnowledgeRepository::churn(&old, &new);
        assert_eq!(
            churn,
            RuleChurn {
                unchanged: 1,
                added: 2,
                removed: 2
            }
        );
    }

    #[test]
    fn churn_ignores_measure_changes() {
        let old = KnowledgeRepository::new(vec![assoc(&[1], 100)]);
        let mut r = assoc(&[1], 100);
        if let Rule::Association(a) = &mut r {
            a.confidence = 0.123;
        }
        let new = KnowledgeRepository::new(vec![r]);
        let churn = KnowledgeRepository::churn(&old, &new);
        assert_eq!(churn.unchanged, 1);
        assert_eq!(churn.added, 0);
    }

    #[test]
    fn empty_repo() {
        let repo = KnowledgeRepository::default();
        assert!(repo.is_empty());
        assert!(repo.statistical_rules().is_empty());
        assert!(repo.distribution_rules().is_empty());
    }
}
