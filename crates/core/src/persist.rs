//! Knowledge-repository persistence.
//!
//! Production deployments retrain off the critical path ("the rule
//! generation process can be conducted in parallel when the production
//! system is in operation") and hand the resulting rules to the online
//! predictor — which may live in another process or survive restarts.
//! The repository serializes to a JSON document for that hand-off.
//!
//! Crash recovery goes further: a [`Checkpoint`] bundles the repository
//! with the predictor's mutable state ([`PredictorState`]) and a rule-set
//! version, so a restarted predictor resumes with its sliding window and
//! pending warnings intact instead of going blind for a whole window.
//! Checkpoint files are written atomically (temp file + rename) so a crash
//! mid-write can never leave a half-written checkpoint behind.

use crate::knowledge::KnowledgeRepository;
use crate::predictor::PredictorState;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Serialization/deserialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON encoding/decoding failure.
    Json(String),
    /// A checkpoint written by an incompatible format version.
    IncompatibleVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
            PersistError::IncompatibleVersion { found, expected } => write!(
                f,
                "incompatible checkpoint format {found} (this build reads {expected})"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes the repository as JSON.
pub fn save_repository<W: Write>(repo: &KnowledgeRepository, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, repo).map_err(|e| PersistError::Json(e.to_string()))
}

/// Reads a repository back from JSON.
pub fn load_repository<R: Read>(r: R) -> Result<KnowledgeRepository, PersistError> {
    serde_json::from_reader(r).map_err(|e| PersistError::Json(e.to_string()))
}

/// Saves to a file path.
pub fn save_repository_file(
    repo: &KnowledgeRepository,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    save_repository(repo, std::io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_repository_file(path: impl AsRef<Path>) -> Result<KnowledgeRepository, PersistError> {
    let file = std::fs::File::open(path)?;
    load_repository(std::io::BufReader::new(file))
}

/// The checkpoint format this build reads and writes.
pub const CHECKPOINT_FORMAT_VERSION: u32 = 1;

/// A crash-recovery snapshot of the online predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version gate (see [`CHECKPOINT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// Monotone counter identifying the rule set in force (bumped at every
    /// retraining), so operators can tell which repository a restarted
    /// predictor resumed under.
    pub rule_set_version: u64,
    /// The knowledge repository in force at snapshot time.
    pub repo: KnowledgeRepository,
    /// The predictor's sliding window and pending warnings.
    pub predictor: PredictorState,
}

impl Checkpoint {
    /// Bundles a snapshot under the current format version.
    pub fn new(rule_set_version: u64, repo: KnowledgeRepository, predictor: PredictorState) -> Self {
        Checkpoint {
            format_version: CHECKPOINT_FORMAT_VERSION,
            rule_set_version,
            repo,
            predictor,
        }
    }
}

/// Writes a checkpoint as JSON.
pub fn save_checkpoint<W: Write>(checkpoint: &Checkpoint, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, checkpoint).map_err(|e| PersistError::Json(e.to_string()))
}

/// Reads a checkpoint back, rejecting incompatible format versions.
pub fn load_checkpoint<R: Read>(r: R) -> Result<Checkpoint, PersistError> {
    let cp: Checkpoint =
        serde_json::from_reader(r).map_err(|e| PersistError::Json(e.to_string()))?;
    if cp.format_version != CHECKPOINT_FORMAT_VERSION {
        return Err(PersistError::IncompatibleVersion {
            found: cp.format_version,
            expected: CHECKPOINT_FORMAT_VERSION,
        });
    }
    Ok(cp)
}

/// Saves a checkpoint to `path` atomically: the bytes land in a sibling
/// temporary file first and are `rename`d into place, so readers (and
/// recovery after a crash mid-write) only ever see a complete checkpoint.
pub fn save_checkpoint_file(
    checkpoint: &Checkpoint,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        save_checkpoint(checkpoint, &mut w)?;
        let file = w.into_inner().map_err(|e| PersistError::Io(e.into_error()))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a checkpoint from a file path.
pub fn load_checkpoint_file(path: impl AsRef<Path>) -> Result<Checkpoint, PersistError> {
    let file = std::fs::File::open(path)?;
    load_checkpoint(std::io::BufReader::new(file))
}

/// The registry checkpoint format this build reads and writes.
pub const REGISTRY_FORMAT_VERSION: u32 = 1;

/// A crash-recovery snapshot of the fleet rule registry
/// ([`RuleRegistry`](crate::registry::RuleRegistry)): the incumbent
/// version plus every retained known-good repository, so a restarted
/// fleet can resume rollouts with its rollback targets intact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryCheckpoint {
    /// Format version gate (see [`REGISTRY_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The version the non-staged fleet serves.
    pub incumbent_version: u64,
    /// The known-good ring's serving marker.
    pub serving: u64,
    /// Retained `(version, repository)` entries, oldest first.
    pub known_good: Vec<(u64, KnowledgeRepository)>,
}

/// Writes a registry checkpoint as JSON.
pub fn save_registry<W: Write>(checkpoint: &RegistryCheckpoint, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, checkpoint).map_err(|e| PersistError::Json(e.to_string()))
}

/// Reads a registry checkpoint back, rejecting incompatible formats.
pub fn load_registry<R: Read>(r: R) -> Result<RegistryCheckpoint, PersistError> {
    let cp: RegistryCheckpoint =
        serde_json::from_reader(r).map_err(|e| PersistError::Json(e.to_string()))?;
    if cp.format_version != REGISTRY_FORMAT_VERSION {
        return Err(PersistError::IncompatibleVersion {
            found: cp.format_version,
            expected: REGISTRY_FORMAT_VERSION,
        });
    }
    Ok(cp)
}

/// Saves a registry checkpoint atomically (temp file + rename, like
/// [`save_checkpoint_file`]).
pub fn save_registry_file(
    checkpoint: &RegistryCheckpoint,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        save_registry(checkpoint, &mut w)?;
        let file = w.into_inner().map_err(|e| PersistError::Io(e.into_error()))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads a registry checkpoint from a file path.
pub fn load_registry_file(path: impl AsRef<Path>) -> Result<RegistryCheckpoint, PersistError> {
    let file = std::fs::File::open(path)?;
    load_registry(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Accuracy;
    use crate::rules::{AssociationRule, DistributionRule, LocationRule, Rule, StatisticalRule};
    use dml_stats::{FittedModel, Weibull};
    use raslog::{Duration, EventTypeId};

    fn sample_repo() -> KnowledgeRepository {
        KnowledgeRepository::with_counts(vec![
            (
                Rule::Association(AssociationRule {
                    antecedent: vec![EventTypeId(3), EventTypeId(9)],
                    fatal: EventTypeId(120),
                    support: 0.04,
                    confidence: 0.81,
                }),
                Some(Accuracy {
                    true_warnings: 12,
                    false_warnings: 3,
                    covered_fatals: 11,
                    missed_fatals: 2,
                }),
            ),
            (
                Rule::Statistical(StatisticalRule {
                    k: 4,
                    probability: 0.99,
                }),
                None,
            ),
            (
                Rule::Location(LocationRule {
                    k: 2,
                    probability: 0.85,
                }),
                None,
            ),
            (
                Rule::Distribution(DistributionRule {
                    model: FittedModel::Weibull(Weibull::new(0.51, 19_984.8)),
                    threshold: 0.6,
                    expire_quantile: 0.88,
                }),
                None,
            ),
        ])
    }

    #[test]
    fn round_trips_through_memory() {
        let repo = sample_repo();
        let mut buf = Vec::new();
        save_repository(&repo, &mut buf).unwrap();
        let back = load_repository(buf.as_slice()).unwrap();
        assert_eq!(back.len(), repo.len());
        for (a, b) in repo.rules().iter().zip(back.rules()) {
            assert_eq!(a, b);
        }
        // Indices survive: the predictor-facing lookups still work.
        assert_eq!(
            back.rules_triggered_by(EventTypeId(3)).len(),
            repo.rules_triggered_by(EventTypeId(3)).len()
        );
        assert_eq!(back.statistical_rules().len(), 1);
        assert_eq!(back.location_rules().len(), 1);
        assert_eq!(back.distribution_rules().len(), 1);
    }

    #[test]
    fn round_trips_through_a_file() {
        let repo = sample_repo();
        let path = std::env::temp_dir().join("dml_repo_roundtrip.json");
        save_repository_file(&repo, &path).unwrap();
        let back = load_repository_file(&path).unwrap();
        assert_eq!(back.identities(), repo.identities());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_repo_drives_a_predictor() {
        use crate::predictor::Predictor;
        use raslog::CleanEvent;
        let mut buf = Vec::new();
        save_repository(&sample_repo(), &mut buf).unwrap();
        let repo = load_repository(buf.as_slice()).unwrap();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let w = p.observe_all(&[
            CleanEvent::new(raslog::Timestamp::from_secs(0), EventTypeId(3), false),
            CleanEvent::new(raslog::Timestamp::from_secs(10), EventTypeId(9), false),
        ]);
        assert_eq!(w.len(), 1, "association rule fires from the reloaded repo");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_repository("not json".as_bytes()).is_err());
        assert!(load_repository_file("/nonexistent/path.json").is_err());
    }

    fn sample_checkpoint() -> Checkpoint {
        use crate::predictor::Predictor;
        use raslog::{CleanEvent, Timestamp};
        let repo = sample_repo();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let _ = p.observe_all(&[
            CleanEvent::new(Timestamp::from_secs(0), EventTypeId(3), false),
            CleanEvent::new(Timestamp::from_secs(10), EventTypeId(9), false),
        ]);
        let state = p.snapshot();
        Checkpoint::new(7, repo, state)
    }

    #[test]
    fn checkpoint_round_trips() {
        let cp = sample_checkpoint();
        let mut buf = Vec::new();
        save_checkpoint(&cp, &mut buf).unwrap();
        let back = load_checkpoint(buf.as_slice()).unwrap();
        assert_eq!(back.rule_set_version, 7);
        assert_eq!(back.predictor, cp.predictor);
        assert_eq!(back.repo.identities(), cp.repo.identities());
        assert!(!back.predictor.active.is_empty(), "pending warning survives");
    }

    #[test]
    fn checkpoint_file_write_is_atomic() {
        let cp = sample_checkpoint();
        let path = std::env::temp_dir().join("dml_checkpoint_atomic.json");
        save_checkpoint_file(&cp, &path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp).exists(),
            "temp file must not linger"
        );
        let back = load_checkpoint_file(&path).unwrap();
        assert_eq!(back.predictor, cp.predictor);
        assert_eq!(back.repo.identities(), cp.repo.identities());
        // Overwriting an existing checkpoint also goes through the rename.
        save_checkpoint_file(&cp, &path).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn registry_checkpoint_round_trips_through_a_file() {
        let repo = sample_repo();
        let cp = RegistryCheckpoint {
            format_version: REGISTRY_FORMAT_VERSION,
            incumbent_version: 3,
            serving: 1,
            known_good: vec![(1, KnowledgeRepository::default()), (3, repo.clone())],
        };
        let path = std::env::temp_dir().join("dml_registry_roundtrip.json");
        save_registry_file(&cp, &path).unwrap();
        let back = load_registry_file(&path).unwrap();
        assert_eq!(back.incumbent_version, 3);
        assert_eq!(back.serving, 1);
        assert_eq!(back.known_good.len(), 2);
        assert_eq!(back.known_good[1].1.identities(), repo.identities());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_registry_checkpoint_is_rejected_not_fatal() {
        let path = std::env::temp_dir().join("dml_registry_corrupt.json");
        std::fs::write(&path, b"\x00corrupt\x00").unwrap();
        assert!(load_registry_file(&path).is_err());
        let mut cp = RegistryCheckpoint {
            format_version: 99,
            incumbent_version: 1,
            serving: 1,
            known_good: Vec::new(),
        };
        let mut buf = Vec::new();
        save_registry(&cp, &mut buf).unwrap();
        match load_registry(buf.as_slice()) {
            Err(PersistError::IncompatibleVersion { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
        cp.format_version = REGISTRY_FORMAT_VERSION;
        buf.clear();
        save_registry(&cp, &mut buf).unwrap();
        assert!(load_registry(buf.as_slice()).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incompatible_version_is_rejected() {
        let mut cp = sample_checkpoint();
        cp.format_version = 99;
        let mut buf = Vec::new();
        save_checkpoint(&cp, &mut buf).unwrap();
        match load_checkpoint(buf.as_slice()) {
            Err(PersistError::IncompatibleVersion { found: 99, .. }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }
}
