//! Knowledge-repository persistence.
//!
//! Production deployments retrain off the critical path ("the rule
//! generation process can be conducted in parallel when the production
//! system is in operation") and hand the resulting rules to the online
//! predictor — which may live in another process or survive restarts.
//! The repository serializes to a JSON document for that hand-off.

use crate::knowledge::KnowledgeRepository;
use std::io::{Read, Write};
use std::path::Path;

/// Serialization/deserialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON encoding/decoding failure.
    Json(String),
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Writes the repository as JSON.
pub fn save_repository<W: Write>(repo: &KnowledgeRepository, w: W) -> Result<(), PersistError> {
    serde_json::to_writer(w, repo).map_err(|e| PersistError::Json(e.to_string()))
}

/// Reads a repository back from JSON.
pub fn load_repository<R: Read>(r: R) -> Result<KnowledgeRepository, PersistError> {
    serde_json::from_reader(r).map_err(|e| PersistError::Json(e.to_string()))
}

/// Saves to a file path.
pub fn save_repository_file(
    repo: &KnowledgeRepository,
    path: impl AsRef<Path>,
) -> Result<(), PersistError> {
    let file = std::fs::File::create(path)?;
    save_repository(repo, std::io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_repository_file(path: impl AsRef<Path>) -> Result<KnowledgeRepository, PersistError> {
    let file = std::fs::File::open(path)?;
    load_repository(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::Accuracy;
    use crate::rules::{AssociationRule, DistributionRule, LocationRule, Rule, StatisticalRule};
    use dml_stats::{FittedModel, Weibull};
    use raslog::{Duration, EventTypeId};

    fn sample_repo() -> KnowledgeRepository {
        KnowledgeRepository::with_counts(vec![
            (
                Rule::Association(AssociationRule {
                    antecedent: vec![EventTypeId(3), EventTypeId(9)],
                    fatal: EventTypeId(120),
                    support: 0.04,
                    confidence: 0.81,
                }),
                Some(Accuracy {
                    true_warnings: 12,
                    false_warnings: 3,
                    covered_fatals: 11,
                    missed_fatals: 2,
                }),
            ),
            (
                Rule::Statistical(StatisticalRule {
                    k: 4,
                    probability: 0.99,
                }),
                None,
            ),
            (
                Rule::Location(LocationRule {
                    k: 2,
                    probability: 0.85,
                }),
                None,
            ),
            (
                Rule::Distribution(DistributionRule {
                    model: FittedModel::Weibull(Weibull::new(0.51, 19_984.8)),
                    threshold: 0.6,
                    expire_quantile: 0.88,
                }),
                None,
            ),
        ])
    }

    #[test]
    fn round_trips_through_memory() {
        let repo = sample_repo();
        let mut buf = Vec::new();
        save_repository(&repo, &mut buf).unwrap();
        let back = load_repository(buf.as_slice()).unwrap();
        assert_eq!(back.len(), repo.len());
        for (a, b) in repo.rules().iter().zip(back.rules()) {
            assert_eq!(a, b);
        }
        // Indices survive: the predictor-facing lookups still work.
        assert_eq!(
            back.rules_triggered_by(EventTypeId(3)).len(),
            repo.rules_triggered_by(EventTypeId(3)).len()
        );
        assert_eq!(back.statistical_rules().len(), 1);
        assert_eq!(back.location_rules().len(), 1);
        assert_eq!(back.distribution_rules().len(), 1);
    }

    #[test]
    fn round_trips_through_a_file() {
        let repo = sample_repo();
        let path = std::env::temp_dir().join("dml_repo_roundtrip.json");
        save_repository_file(&repo, &path).unwrap();
        let back = load_repository_file(&path).unwrap();
        assert_eq!(back.identities(), repo.identities());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_repo_drives_a_predictor() {
        use crate::predictor::Predictor;
        use raslog::CleanEvent;
        let mut buf = Vec::new();
        save_repository(&sample_repo(), &mut buf).unwrap();
        let repo = load_repository(buf.as_slice()).unwrap();
        let mut p = Predictor::new(&repo, Duration::from_secs(300));
        let w = p.observe_all(&[
            CleanEvent::new(raslog::Timestamp::from_secs(0), EventTypeId(3), false),
            CleanEvent::new(raslog::Timestamp::from_secs(10), EventTypeId(9), false),
        ]);
        assert_eq!(w.len(), 1, "association rule fires from the reloaded repo");
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(load_repository("not json".as_bytes()).is_err());
        assert!(load_repository_file("/nonexistent/path.json").is_err());
    }
}
