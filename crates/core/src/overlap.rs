//! Overlapped online serving: background retraining with hot-swapped
//! rule repositories.
//!
//! [`run_driver`](crate::driver::run_driver) retrains inline, so the
//! event stream stalls for the full meta-learn + revise pass at every
//! block boundary and end-to-end wall-clock is
//! `predict_time + retrain_time`. The overlapped driver moves retraining
//! to a dedicated worker thread: at each block boundary it posts a
//! [`RetrainRequest`] over a bounded crossbeam channel and keeps
//! predicting the next block with the current rules. When the worker
//! finishes, the new [`KnowledgeRepository`] is installed by swapping an
//! [`Arc`] (double-buffering — in-flight readers keep the old buffer
//! alive) and the predictor's sliding-window state is carried across via
//! [`Predictor::snapshot`] / [`Predictor::restore`], so no events are
//! dropped or replayed at the swap.
//!
//! The price of the overlap is *staleness*: events served between the
//! boundary and the swap are matched against the previous rule set.
//! [`OverlapStats`] accounts for it — events served on outdated rules,
//! swaps that landed mid-block vs. retrains that outran the block — and
//! is exported as `driver.swap_staleness_events` /
//! `driver.retrain_overlap_ms`.
//!
//! [`SwapMode::Synchronous`] degenerates to the serial schedule (post,
//! then immediately wait), which must produce a report identical to
//! `run_driver` — the determinism tests pin that equivalence.

use crate::admission::AdmissionQueue;
use crate::driver::{ChurnRecord, DriverConfig, DriverReport, TrainingPolicy};
use crate::evaluation::Accuracy;
use crate::knowledge::KnowledgeRepository;
use crate::meta::MetaLearner;
use crate::predictor::{Predictor, PredictorState, Warning};
use crossbeam::channel::{bounded, Receiver, TryRecvError};
use raslog::store::window;
use raslog::{CleanEvent, Timestamp, WEEK_MS};
use serde::Serialize;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration as StdDuration, Instant};

/// How a finished retraining is folded into the serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapMode {
    /// Wait for every retraining at the block boundary before serving
    /// the next block. Bit-identical to the serial driver; the worker
    /// thread buys nothing but exercises the same machinery.
    Synchronous,
    /// Keep serving with the current rules while the worker retrains;
    /// check for a finished retraining every `poll_every` events and
    /// hot-swap the repository the moment it lands.
    Overlapped {
        /// Events served between polls of the result channel.
        poll_every: usize,
    },
}

impl SwapMode {
    /// Overlapped with the default poll cadence.
    pub fn overlapped() -> Self {
        SwapMode::Overlapped { poll_every: 256 }
    }
}

/// Staleness and overlap accounting for one overlapped run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct OverlapStats {
    /// Trainings performed by the worker (initial training included).
    pub retrainings: usize,
    /// Retrainings whose result landed while its block was being served
    /// (the repository was hot-swapped mid-block).
    pub swaps_mid_block: usize,
    /// Retrainings that outran their whole block; the driver blocked for
    /// them at the next boundary.
    pub swaps_at_boundary: usize,
    /// Events served against an outdated rule set (from the boundary
    /// that scheduled the retraining until its swap).
    pub swap_staleness_events: u64,
    /// Total worker wall-clock spent training, milliseconds.
    pub retrain_wall_ms: f64,
    /// Main-thread wall-clock spent blocked waiting on the worker,
    /// milliseconds (initial training is always fully blocked).
    pub blocked_wait_ms: f64,
}

impl OverlapStats {
    /// Training wall-clock hidden behind serving: total worker time
    /// minus the time the serving thread spent blocked on it.
    pub fn retrain_overlap_ms(&self) -> f64 {
        (self.retrain_wall_ms - self.blocked_wait_ms).max(0.0)
    }
}

/// One unit of work for the retraining worker: train on weeks
/// `from..to` for the block starting at `week`.
#[derive(Debug, Clone, Copy)]
pub struct RetrainRequest {
    /// The block-boundary week this retraining is for (churn is recorded
    /// against it, matching the serial driver).
    pub week: i64,
    /// Training window start, in weeks.
    pub from: i64,
    /// Training window end (exclusive), in weeks.
    pub to: i64,
}

/// Where in the serving schedule a repository install landed — handed to
/// the engine's install hook so callers can write swap records with the
/// right context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapContext {
    /// The block-boundary week the retraining was scheduled for.
    pub week: i64,
    /// Version stamped on the installed repository.
    pub repo_version: u64,
    /// `true` when the install interrupted a block in flight (a
    /// mid-block hot swap), `false` at boundaries and in sync mode.
    pub mid_block: bool,
}

/// Accuracy of one fully-served block, handed to the engine's
/// supervisor hook after the boundary drain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockTelemetry {
    /// First week of the block just served.
    pub week: i64,
    /// Week after the last one served (the boundary reached).
    pub block_end: i64,
    /// Warning/failure accuracy over exactly this block.
    pub accuracy: Accuracy,
    /// Version of the repository in force when the block ended.
    pub serving_version: u64,
}

/// What the supervisor hook asks the engine to do at a boundary.
#[derive(Default)]
pub(crate) struct SupervisorVerdict {
    /// Replace the serving repository (a rollback). The replacement
    /// keeps its own version stamp — no churn record is written, so
    /// subsequent warnings carry the rolled-back version's provenance.
    pub rollback: Option<KnowledgeRepository>,
    /// Length of the next serving block in weeks (an early retrain);
    /// `None` returns to the configured `W_R` cadence.
    pub next_retrain_weeks: Option<i64>,
}

/// Install gate (the canary): `gate(candidate, incumbent, week, extra)`
/// — return `false` to reject the candidate.
pub(crate) type InstallGate<'a, E> =
    Box<dyn FnMut(&KnowledgeRepository, &KnowledgeRepository, i64, &E) -> bool + 'a>;

/// Post-block supervisor: telemetry in, rollback/reschedule verdict out.
pub(crate) type BlockSupervisor<'a> = Box<dyn FnMut(&BlockTelemetry) -> SupervisorVerdict + 'a>;

/// Lifecycle hooks threaded through the engine. All default to inert:
/// a default `EngineControl` leaves the schedule bit-identical to the
/// plain engine.
pub(crate) struct EngineControl<'a, E> {
    /// Install gate (the canary). On rejection the incumbent keeps
    /// serving and no churn record or version is consumed. Never
    /// invoked for the initial training (there is no incumbent worth
    /// keeping).
    pub gate: Option<InstallGate<'a, E>>,
    /// Runs after every fully-served block with its accuracy; may roll
    /// the repository back and shorten the next block.
    pub supervisor: Option<BlockSupervisor<'a>>,
    /// Bounded ingest queue on the serving hot path. `None` serves
    /// directly (zero cost).
    pub admission: Option<&'a RefCell<AdmissionQueue>>,
    /// Causal tracer for the serving path (admission / predict / warn
    /// spans). `None` — or a disabled tracer — leaves the untraced fast
    /// paths bit-identical.
    pub tracer: Option<dml_obs::SharedTracer>,
    /// Metrics time-series store scraped at block boundaries with the
    /// engine-side report counters (warnings, retrainings, predictor
    /// metrics). Strictly observational; `None` costs nothing.
    pub history: Option<dml_obs::SharedHistory>,
}

impl<E> Default for EngineControl<'_, E> {
    fn default() -> Self {
        EngineControl {
            gate: None,
            supervisor: None,
            admission: None,
            tracer: None,
            history: None,
        }
    }
}

/// Serves `slice` through the optional admission queue. Events arriving
/// in the same log second form one admission batch (duplicate storms
/// report in whole-second bursts); the queue is fully drained into the
/// predictor after each batch, so with nothing shed the serve order —
/// and thus every warning — is identical to `observe_all`.
///
/// With a `tracer` supplied *and enabled*, every event gets a
/// [`dml_obs::TraceContext`] recomputed from its identity and the serve
/// records admission / predict / warn spans against it; warning-producing
/// traces are promoted past the sampler and linked by warning id. A
/// `None` or disabled tracer takes the exact pre-tracing fast paths, so
/// the untraced drivers stay bit-identical. Shared by the overlapped
/// engine and the serial hardened driver (`shard` is `None` off-fleet).
pub(crate) fn serve_slice(
    predictor: &mut Predictor,
    slice: &[CleanEvent],
    admission: Option<&RefCell<AdmissionQueue>>,
    tracer: Option<&dml_obs::SharedTracer>,
    shard: Option<u32>,
) -> Vec<Warning> {
    if let Some(shared) = tracer {
        if dml_obs::with_tracer(shared, |t| t.enabled()) {
            return dml_obs::with_tracer(shared, |t| {
                serve_slice_traced(predictor, slice, admission, t, shard)
            });
        }
    }
    let Some(queue) = admission else {
        return predictor.observe_all(slice);
    };
    // Offer/drain cadence is per log second (shed decisions depend on
    // queue occupancy at each drain), but serving is deferred: admitted
    // events collect into one buffer and take the batch path in a single
    // sweep. Admission never consults predictor state, so the admitted
    // set — and with it every warning — is identical to the per-event
    // serve order.
    let mut q = queue.borrow_mut();
    let mut admitted = Vec::with_capacity(slice.len());
    let mut i = 0;
    while i < slice.len() {
        let t = slice[i].time;
        let mut j = i;
        while j < slice.len() && slice[j].time == t {
            q.offer(slice[j]);
            j += 1;
        }
        q.drain(|ev| admitted.push(ev));
        i = j;
    }
    predictor.observe_all(&admitted)
}

/// Observes one event under the tracer: a wall-clock-timed predict span,
/// and on any warning a promotion plus warn span and warning-id link so
/// `repro trace --id` can find the chain from the warning.
pub(crate) fn observe_traced(
    predictor: &mut Predictor,
    tracer: &mut dml_obs::Tracer,
    shard: Option<u32>,
    ev: &CleanEvent,
    warnings: &mut Vec<Warning>,
) {
    use dml_obs::trace::stage;
    let ctx = tracer.context(ev.time.0, ev.type_id.0, ev.fatal);
    let start = Instant::now();
    let issued = predictor.observe(ev);
    let dur_us = start.elapsed().as_micros() as u64;
    let outcome = if issued.is_empty() { "ok" } else { "warning" };
    tracer.record(ctx, stage::PREDICT, shard, ev.time.0, dur_us, outcome);
    if !issued.is_empty() {
        tracer.promote(ctx.id);
        tracer.record(ctx, stage::WARN, shard, ev.time.0, 0, "ok");
        for w in &issued {
            tracer.link_warning(w.id.to_string(), ctx.id);
        }
    }
    warnings.extend(issued);
}

/// The traced twin of [`serve_slice`]: same batching and drain order, one
/// tracer lock held for the whole slice.
fn serve_slice_traced(
    predictor: &mut Predictor,
    slice: &[CleanEvent],
    admission: Option<&RefCell<AdmissionQueue>>,
    tracer: &mut dml_obs::Tracer,
    shard: Option<u32>,
) -> Vec<Warning> {
    use dml_obs::trace::stage;
    let mut warnings = Vec::new();
    let Some(queue) = admission else {
        for ev in slice {
            observe_traced(predictor, tracer, shard, ev, &mut warnings);
        }
        return warnings;
    };
    let mut q = queue.borrow_mut();
    let mut i = 0;
    while i < slice.len() {
        let t = slice[i].time;
        let mut j = i;
        while j < slice.len() && slice[j].time == t {
            let ev = slice[j];
            let ctx = tracer.context(ev.time.0, ev.type_id.0, ev.fatal);
            let start = Instant::now();
            let admitted = q.offer(ev);
            let dur_us = start.elapsed().as_micros() as u64;
            let outcome = if admitted { "ok" } else { "shed" };
            tracer.record(ctx, stage::ADMISSION, shard, ev.time.0, dur_us, outcome);
            j += 1;
        }
        q.drain(|ev| observe_traced(predictor, tracer, shard, &ev, &mut warnings));
        i = j;
    }
    warnings
}

/// What the worker sends back.
pub(crate) struct RetrainDone<E> {
    week: i64,
    repo: KnowledgeRepository,
    removed_by_reviser: usize,
    train_wall: StdDuration,
    extra: E,
}

fn recv_result<E>(rx: &Receiver<RetrainDone<E>>, stats: &mut OverlapStats) -> RetrainDone<E> {
    let start = Instant::now();
    let done = rx.recv().expect("retraining worker died");
    stats.blocked_wait_ms += start.elapsed().as_secs_f64() * 1000.0;
    done
}

/// Installs a finished retraining: records churn against the boundary
/// week, lets the caller absorb its payload, then swaps the double
/// buffer. Old readers (an in-flight predictor epoch) keep the previous
/// `Arc` alive until they finish.
///
/// When a `gate` is supplied and rejects the candidate, nothing is
/// installed: no churn record, no version consumed, the incumbent keeps
/// serving, and the next scheduled retraining is the retry. Returns
/// whether the repository was actually swapped.
fn install<E>(
    report: &mut DriverReport,
    repo: &mut Arc<KnowledgeRepository>,
    mut done: RetrainDone<E>,
    stats: &mut OverlapStats,
    mid_block: bool,
    on_install: &mut impl FnMut(&KnowledgeRepository, SwapContext, &E),
    gate: Option<&mut InstallGate<'_, E>>,
) -> bool {
    stats.retrainings += 1;
    stats.retrain_wall_ms += done.train_wall.as_secs_f64() * 1000.0;
    if let Some(gate) = gate {
        if !gate(&done.repo, repo, done.week, &done.extra) {
            return false;
        }
    }
    let diff = KnowledgeRepository::churn(repo, &done.repo);
    report.churn.push(ChurnRecord {
        week: done.week,
        unchanged: diff.unchanged,
        added: diff.added,
        removed_by_learner: diff.removed,
        removed_by_reviser: done.removed_by_reviser,
        total: done.repo.len(),
    });
    // Same numbering as the serial driver: version = trainings so far,
    // so synchronous-overlap warnings carry identical provenance.
    let version = report.churn.len() as u64;
    done.repo.set_version(version);
    on_install(
        &done.repo,
        SwapContext {
            week: done.week,
            repo_version: version,
            mid_block,
        },
        &done.extra,
    );
    *repo = Arc::new(done.repo);
    true
}

/// The overlapped block loop, generic over the training backend.
///
/// `train` runs on the worker thread (it owns the trainer); `on_install`
/// runs on the serving thread when a retraining is folded in (health /
/// version accounting, swap records — it sees the installed repository
/// and a [`SwapContext`]); `on_warnings` runs after each served chunk
/// with the warnings it produced (flight recording); `on_boundary` runs
/// after each block with the boundary week reached, the repository in
/// force for the next block and the predictor's state (checkpoint
/// writes). `control` carries the optional lifecycle hooks — install
/// gate, block supervisor, admission queue; the default is inert. The
/// serial schedule — initial training, warm-up with the preceding week,
/// churn per boundary, weekly scoring — is exactly
/// [`run_driver`](crate::driver::run_driver)'s.
// Three data inputs, three callbacks, the control block: splitting
// further would only invent structs the one caller unpacks again.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_overlapped_engine<E, T>(
    events: &[CleanEvent],
    total_weeks: i64,
    dc: &DriverConfig,
    swap: SwapMode,
    train: T,
    control: EngineControl<E>,
    mut on_install: impl FnMut(&KnowledgeRepository, SwapContext, &E),
    mut on_warnings: impl FnMut(&[Warning]),
    mut on_boundary: impl FnMut(i64, &KnowledgeRepository, PredictorState),
) -> DriverReport
where
    E: Send,
    T: FnMut(&RetrainRequest) -> (KnowledgeRepository, usize, E) + Send,
{
    assert!(
        dc.initial_training_weeks > 0 && dc.initial_training_weeks < total_weeks,
        "initial training window must leave room for testing"
    );
    let first_test_week = dc.initial_training_weeks;
    let retrain_every = dc.framework.retrain_weeks.max(1);
    let slice_of = |from_week: i64, to_week: i64| {
        window(
            events,
            Timestamp(from_week * WEEK_MS),
            Timestamp(to_week * WEEK_MS),
        )
    };

    let mut report = DriverReport::default();
    let mut stats = OverlapStats::default();

    let (req_tx, req_rx) = bounded::<RetrainRequest>(1);
    let (res_tx, res_rx) = bounded::<RetrainDone<E>>(1);

    std::thread::scope(|s| {
        let mut train = train;
        let mut control = control;
        s.spawn(move || {
            while let Ok(req) = req_rx.recv() {
                let start = Instant::now();
                let (repo, removed_by_reviser, extra) = train(&req);
                let done = RetrainDone {
                    week: req.week,
                    repo,
                    removed_by_reviser,
                    train_wall: start.elapsed(),
                    extra,
                };
                if res_tx.send(done).is_err() {
                    break; // driver gone; nothing left to retrain for
                }
            }
        });

        // Initial training goes through the worker too (it owns the
        // trainer); nothing can overlap it. Installing against the empty
        // repository yields the same all-added churn record as serial.
        let mut repo = Arc::new(KnowledgeRepository::default());
        req_tx
            .send(RetrainRequest {
                week: first_test_week,
                from: 0,
                to: first_test_week,
            })
            .expect("retraining worker died");
        let done = recv_result(&res_rx, &mut stats);
        // The initial training never meets the gate: there is no
        // incumbent worth keeping over it.
        install(&mut report, &mut repo, done, &mut stats, false, &mut on_install, None);

        let mut pending = false;
        let mut week = first_test_week;
        // The supervisor may shorten individual blocks (early retrains
        // after a rollback); without one every block is `W_R` long.
        let mut next_every = retrain_every;
        while week < total_weeks {
            let block_end = (week + next_every).min(total_weeks);
            let warm = slice_of((week - 1).max(0), week);
            let block = slice_of(week, block_end);
            let block_start_wi = report.warnings.len();

            // Serve the block in repository epochs: each iteration serves
            // with one rule set until either the block is exhausted or a
            // pending retraining lands and the repository is hot-swapped.
            let mut carry: Option<PredictorState> = None;
            let mut served = 0usize;
            // The epoch loop breaks with the predictor state at the
            // boundary (for the checkpoint hook).
            let boundary_state = loop {
                let cur = Arc::clone(&repo);
                let mut predictor = match carry.take() {
                    None => {
                        // Warm the predictor with the preceding week so
                        // windows and the last-failure clock are primed
                        // at the block boundary.
                        let mut p = Predictor::new(&cur, dc.framework.window);
                        p.warm_up(warm);
                        p.reset_metrics();
                        p
                    }
                    // Mid-block swap: resume the sliding windows and
                    // pending warnings on the new rules.
                    Some(state) => Predictor::restore(&cur, dc.framework.window, state),
                };

                let mut landed: Option<RetrainDone<E>> = None;
                if pending {
                    let poll_every = match swap {
                        SwapMode::Synchronous => unreachable!("sync mode never leaves a pending retrain"),
                        SwapMode::Overlapped { poll_every } => poll_every.max(1),
                    };
                    // Serve a chunk, then poll: a mid-block swap therefore
                    // always has at least one stale chunk behind it, and a
                    // worker that finishes instantly still cannot make the
                    // overlapped schedule diverge from "serve, then check".
                    while served < block.len() {
                        let upto = (served + poll_every).min(block.len());
                        let before = report.warnings.len();
                        report.warnings.extend(serve_slice(
                            &mut predictor,
                            &block[served..upto],
                            control.admission,
                            control.tracer.as_ref(),
                            None,
                        ));
                        on_warnings(&report.warnings[before..]);
                        served = upto;
                        match res_rx.try_recv() {
                            Ok(done) => {
                                landed = Some(done);
                                break;
                            }
                            Err(TryRecvError::Empty) => {}
                            Err(TryRecvError::Disconnected) => {
                                panic!("retraining worker died")
                            }
                        }
                    }
                } else {
                    let before = report.warnings.len();
                    report.warnings.extend(serve_slice(
                        &mut predictor,
                        &block[served..],
                        control.admission,
                        control.tracer.as_ref(),
                        None,
                    ));
                    on_warnings(&report.warnings[before..]);
                    served = block.len();
                }

                match landed {
                    Some(done) => {
                        pending = false;
                        report.predictor_metrics.merge(predictor.metrics());
                        let state = predictor.snapshot();
                        drop(predictor);
                        // Staleness is only real when the candidate was
                        // actually swapped in; a gate-rejected candidate
                        // leaves the incumbent serving, nothing swapped.
                        if install(
                            &mut report,
                            &mut repo,
                            done,
                            &mut stats,
                            true,
                            &mut on_install,
                            control.gate.as_mut(),
                        ) {
                            stats.swaps_mid_block += 1;
                            stats.swap_staleness_events += served as u64;
                        }
                        carry = Some(state);
                        // Next epoch restores onto the fresh rules.
                    }
                    None => {
                        // Block exhausted. A retraining that outran the
                        // whole block is folded in now (the entire block
                        // was served stale).
                        if pending {
                            let done = recv_result(&res_rx, &mut stats);
                            pending = false;
                            if install(
                                &mut report,
                                &mut repo,
                                done,
                                &mut stats,
                                false,
                                &mut on_install,
                                control.gate.as_mut(),
                            ) {
                                stats.swaps_at_boundary += 1;
                                stats.swap_staleness_events += block.len() as u64;
                            }
                        }
                        report.predictor_metrics.merge(predictor.metrics());
                        break predictor.snapshot();
                    }
                }
            };

            // The block is fully served. Let the supervisor judge it —
            // it may roll the repository back to a known-good version
            // (kept with its original version stamp, so no churn record)
            // and pull the next retraining forward.
            if let Some(supervisor) = control.supervisor.as_mut() {
                let telemetry = BlockTelemetry {
                    week,
                    block_end,
                    accuracy: crate::evaluation::score(
                        &report.warnings[block_start_wi..],
                        block,
                    ),
                    serving_version: repo.version(),
                };
                let verdict = supervisor(&telemetry);
                if let Some(rolled_back) = verdict.rollback {
                    repo = Arc::new(rolled_back);
                }
                next_every = verdict.next_retrain_weeks.unwrap_or(retrain_every).max(1);
            }
            // Checkpoint against whatever will serve next (the
            // rolled-back repository, after a rollback).
            on_boundary(block_end, &repo, boundary_state);

            // Scrape the engine-owned accounting at the boundary. Runs
            // after the block is fully served and installs are folded in;
            // nothing on the serving or retraining path reads the store.
            if let Some(history) = &control.history {
                let mut scrape = dml_obs::Registry::new();
                scrape.counter_add("driver.warnings", report.warnings.len() as u64);
                scrape.counter_add("driver.retrainings", report.churn.len() as u64);
                scrape.gauge_set("driver.rules_installed", repo.len() as f64);
                scrape.collect(&report.predictor_metrics);
                dml_obs::with_history(history, |store| {
                    store.scrape(block_end * WEEK_MS, &scrape.snapshot())
                });
            }

            // Schedule the retraining for the next block.
            if block_end < total_weeks && dc.policy != TrainingPolicy::Static {
                let (from, to) = match dc.policy {
                    TrainingPolicy::Static => unreachable!(),
                    TrainingPolicy::SlidingWeeks(n) => ((block_end - n).max(0), block_end),
                    TrainingPolicy::Growing => (0, block_end),
                };
                req_tx
                    .send(RetrainRequest {
                        week: block_end,
                        from,
                        to,
                    })
                    .expect("retraining worker died");
                match swap {
                    SwapMode::Synchronous => {
                        let done = recv_result(&res_rx, &mut stats);
                        install(
                            &mut report,
                            &mut repo,
                            done,
                            &mut stats,
                            false,
                            &mut on_install,
                            control.gate.as_mut(),
                        );
                    }
                    SwapMode::Overlapped { .. } => pending = true,
                }
            }
            week = block_end;
        }
        drop(req_tx); // worker's recv loop ends; scope joins it
    });

    let test_events = slice_of(first_test_week, total_weeks);
    report.weekly = crate::evaluation::weekly_series(
        &report.warnings,
        test_events,
        first_test_week,
        total_weeks - 1,
    );
    report.overall = crate::evaluation::score(&report.warnings, test_events);
    crate::driver::record_lead_times(&mut report, test_events);
    report.overlap = Some(stats);
    report
}

/// [`run_driver`](crate::driver::run_driver) with retraining on a
/// background worker and hot-swapped repositories.
///
/// With [`SwapMode::Synchronous`] the report is identical to the serial
/// driver's (modulo the `overlap` stats); with [`SwapMode::Overlapped`]
/// blocks start on the previous rules and swap when the worker delivers,
/// trading bounded staleness for `max(predict, retrain)` wall-clock.
pub fn run_overlapped_driver(
    events: &[CleanEvent],
    total_weeks: i64,
    config: &DriverConfig,
    swap: SwapMode,
) -> DriverReport {
    let meta = MetaLearner::new(config.framework);
    let only = config.only_kind;
    let train = move |req: &RetrainRequest| {
        let slice = window(
            events,
            Timestamp(req.from * WEEK_MS),
            Timestamp(req.to * WEEK_MS),
        );
        let outcome = match only {
            None => meta.train(slice),
            Some(kind) => meta.train_single_kind(slice, kind),
        };
        (outcome.repo, outcome.removed_by_reviser, ())
    };
    run_overlapped_engine(
        events,
        total_weeks,
        config,
        swap,
        train,
        EngineControl::default(),
        |_, _, _: &()| {},
        |_| {},
        |_, _, _| {},
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use raslog::{Duration, EventTypeId};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    fn stable_log(weeks: i64) -> Vec<CleanEvent> {
        let week_secs = WEEK_MS / 1000;
        let mut events = Vec::new();
        for w in 0..weeks {
            for i in 0..12 {
                let base = w * week_secs + i * 50_000;
                events.push(ev(base, 1, false));
                events.push(ev(base + 60, 2, false));
                events.push(ev(base + 200, 100, true));
            }
        }
        events
    }

    fn quick_config(policy: TrainingPolicy) -> DriverConfig {
        DriverConfig {
            framework: FrameworkConfig {
                window: Duration::from_secs(300),
                retrain_weeks: 2,
                ..FrameworkConfig::default()
            },
            policy,
            initial_training_weeks: 4,
            only_kind: None,
        }
    }

    #[test]
    fn synchronous_swap_matches_serial_driver() {
        let log = stable_log(12);
        for policy in [
            TrainingPolicy::Growing,
            TrainingPolicy::SlidingWeeks(4),
            TrainingPolicy::Static,
        ] {
            let config = quick_config(policy);
            let serial = crate::driver::run_driver(&log, 12, &config);
            let overlapped = run_overlapped_driver(&log, 12, &config, SwapMode::Synchronous);
            // Full-struct equality covers ids and provenance: the
            // synchronous overlap must attribute every warning to the
            // same rule, repository version and precursor evidence.
            assert_eq!(overlapped.warnings, serial.warnings, "{policy:?}");
            for (o, s) in overlapped.warnings.iter().zip(&serial.warnings) {
                assert_eq!(o.id, s.id, "{policy:?}");
                assert_eq!(o.provenance, s.provenance, "{policy:?}");
            }
            assert_eq!(overlapped.churn, serial.churn, "{policy:?}");
            assert_eq!(overlapped.weekly, serial.weekly, "{policy:?}");
            assert_eq!(overlapped.overall, serial.overall, "{policy:?}");
            let stats = overlapped.overlap.expect("overlap stats recorded");
            assert_eq!(stats.swap_staleness_events, 0, "sync serves nothing stale");
            assert_eq!(stats.swaps_mid_block + stats.swaps_at_boundary, 0);
            assert_eq!(stats.retrainings, serial.churn.len());
        }
    }

    #[test]
    fn overlapped_swap_stays_accurate_and_records_staleness() {
        let log = stable_log(12);
        let config = quick_config(TrainingPolicy::SlidingWeeks(4));
        let serial = crate::driver::run_driver(&log, 12, &config);
        let overlapped =
            run_overlapped_driver(&log, 12, &config, SwapMode::Overlapped { poll_every: 1 });

        let stats = overlapped.overlap.expect("overlap stats recorded");
        assert_eq!(stats.retrainings, overlapped.churn.len());
        assert!(
            stats.swap_staleness_events > 0,
            "overlap must serve some events on old rules: {stats:?}"
        );
        // A stable pattern survives bounded staleness: the old rules
        // predict it just as well, so accuracy stays near serial.
        assert!(
            (overlapped.overall.recall() - serial.overall.recall()).abs() < 0.05,
            "recall {} vs serial {}",
            overlapped.overall.recall(),
            serial.overall.recall()
        );
        assert!(
            (overlapped.overall.precision() - serial.overall.precision()).abs() < 0.05,
            "precision {} vs serial {}",
            overlapped.overall.precision(),
            serial.overall.precision()
        );
        // Same retraining schedule, staleness or not.
        let weeks: Vec<i64> = overlapped.churn.iter().map(|c| c.week).collect();
        let serial_weeks: Vec<i64> = serial.churn.iter().map(|c| c.week).collect();
        assert_eq!(weeks, serial_weeks);
    }

    #[test]
    fn install_hook_sees_versions_and_swap_context() {
        let log = stable_log(12);
        let config = quick_config(TrainingPolicy::SlidingWeeks(4));
        let meta = MetaLearner::new(config.framework);
        let train = |req: &RetrainRequest| {
            let slice = window(
                &log,
                Timestamp(req.from * WEEK_MS),
                Timestamp(req.to * WEEK_MS),
            );
            let outcome = meta.train(slice);
            (outcome.repo, outcome.removed_by_reviser, ())
        };
        let mut installs: Vec<SwapContext> = Vec::new();
        let report = run_overlapped_engine(
            &log,
            12,
            &config,
            SwapMode::Overlapped { poll_every: 1 },
            train,
            EngineControl::default(),
            |repo, ctx, _: &()| {
                assert_eq!(repo.version(), ctx.repo_version);
                installs.push(ctx);
            },
            |_| {},
            |_, _, _| {},
        );
        assert_eq!(installs.len(), report.churn.len());
        let versions: Vec<u64> = installs.iter().map(|c| c.repo_version).collect();
        assert_eq!(versions, (1..=installs.len() as u64).collect::<Vec<_>>());
        assert!(!installs[0].mid_block, "initial install is never mid-block");
        let stats = report.overlap.unwrap();
        assert_eq!(
            installs.iter().filter(|c| c.mid_block).count(),
            stats.swaps_mid_block
        );
    }

    #[test]
    fn gate_rejection_keeps_incumbent_and_consumes_no_version() {
        let log = stable_log(12);
        let config = quick_config(TrainingPolicy::SlidingWeeks(4));
        let meta = MetaLearner::new(config.framework);
        let train = |req: &RetrainRequest| {
            let slice = window(
                &log,
                Timestamp(req.from * WEEK_MS),
                Timestamp(req.to * WEEK_MS),
            );
            let outcome = meta.train(slice);
            (outcome.repo, outcome.removed_by_reviser, ())
        };
        let rejected = std::cell::Cell::new(0usize);
        let control = EngineControl {
            gate: Some(Box::new(|_cand, incumbent: &KnowledgeRepository, _week, _e: &()| {
                assert_eq!(incumbent.version(), 1, "incumbent never replaced");
                rejected.set(rejected.get() + 1);
                false
            })),
            ..EngineControl::default()
        };
        let report = run_overlapped_engine(
            &log,
            12,
            &config,
            SwapMode::Synchronous,
            train,
            control,
            |_, _, _: &()| {},
            |_| {},
            |_, _, _| {},
        );
        // Blocks [4,6) [6,8) [8,10) [10,12): three scheduled retrains,
        // all rejected. Only the (ungated) initial training is churned.
        assert_eq!(rejected.get(), 3);
        assert_eq!(report.churn.len(), 1, "rejections write no churn");
        let stats = report.overlap.unwrap();
        assert_eq!(stats.retrainings, 4, "training work still happened");
        assert!(report
            .warnings
            .iter()
            .all(|w| w.provenance.repo_version == 1));
        // The stable pattern is in the initial rules; serving quality
        // survives every rejection.
        assert!(report.overall.recall() > 0.9);
    }

    #[test]
    fn supervisor_rolls_back_and_shortens_blocks() {
        let log = stable_log(12);
        // Static: the initial repository serves the whole run, so a
        // rollback is not immediately papered over by the next install.
        let config = quick_config(TrainingPolicy::Static);
        let meta = MetaLearner::new(config.framework);
        let train = |req: &RetrainRequest| {
            let slice = window(
                &log,
                Timestamp(req.from * WEEK_MS),
                Timestamp(req.to * WEEK_MS),
            );
            let outcome = meta.train(slice);
            (outcome.repo, outcome.removed_by_reviser, ())
        };
        let installed: RefCell<Option<KnowledgeRepository>> = RefCell::new(None);
        let blocks: RefCell<Vec<(i64, i64)>> = RefCell::new(Vec::new());
        let control = EngineControl {
            supervisor: Some(Box::new(|bt: &BlockTelemetry| {
                blocks.borrow_mut().push((bt.week, bt.block_end));
                let mut verdict = SupervisorVerdict::default();
                if bt.block_end == 8 {
                    // Roll back to a restamped copy of the initial rules
                    // and pull the next boundary forward.
                    let mut repo = installed.borrow().clone().unwrap();
                    repo.set_version(99);
                    verdict.rollback = Some(repo);
                    verdict.next_retrain_weeks = Some(1);
                }
                verdict
            })),
            ..EngineControl::default()
        };
        let report = run_overlapped_engine(
            &log,
            12,
            &config,
            SwapMode::Synchronous,
            train,
            control,
            |repo, _, _: &()| *installed.borrow_mut() = Some(repo.clone()),
            |_| {},
            |_, _, _| {},
        );
        // Blocks were [4,6) [6,8), then the verdict shortened one block
        // to a single week before returning to the W_R = 2 cadence.
        assert_eq!(
            *blocks.borrow(),
            vec![(4, 6), (6, 8), (8, 9), (9, 11), (11, 12)]
        );
        // Warnings after the rollback carry the rolled-back version.
        assert!(report
            .warnings
            .iter()
            .any(|w| w.provenance.repo_version == 99));
        for w in &report.warnings {
            let version = w.provenance.repo_version;
            assert_eq!(version, if w.id.issued_ms < 8 * WEEK_MS { 1 } else { 99 });
        }
    }

    #[test]
    fn admission_with_headroom_is_bit_identical() {
        use crate::admission::{AdmissionConfig, AdmissionQueue};
        let log = stable_log(12);
        let config = quick_config(TrainingPolicy::SlidingWeeks(4));
        let baseline = run_overlapped_driver(&log, 12, &config, SwapMode::Synchronous);

        let meta = MetaLearner::new(config.framework);
        let train = |req: &RetrainRequest| {
            let slice = window(
                &log,
                Timestamp(req.from * WEEK_MS),
                Timestamp(req.to * WEEK_MS),
            );
            let outcome = meta.train(slice);
            (outcome.repo, outcome.removed_by_reviser, ())
        };
        let queue = RefCell::new(AdmissionQueue::new(AdmissionConfig::new(4096)));
        let control = EngineControl {
            admission: Some(&queue),
            ..EngineControl::default()
        };
        let report = run_overlapped_engine(
            &log,
            12,
            &config,
            SwapMode::Synchronous,
            train,
            control,
            |_, _, _: &()| {},
            |_| {},
            |_, _, _| {},
        );
        assert_eq!(report.warnings, baseline.warnings);
        assert_eq!(report.churn, baseline.churn);
        assert_eq!(report.weekly, baseline.weekly);
        let stats = queue.borrow().stats();
        assert_eq!(stats.shed_total(), 0, "headroom sheds nothing");
        assert_eq!(stats.admitted, stats.drained);
        assert!(stats.high_watermark >= 1);
        assert!(stats.high_watermark <= stats.capacity);
    }

    #[test]
    fn static_policy_never_posts_background_work() {
        let log = stable_log(12);
        let config = quick_config(TrainingPolicy::Static);
        let report = run_overlapped_driver(&log, 12, &config, SwapMode::overlapped());
        let stats = report.overlap.unwrap();
        assert_eq!(report.churn.len(), 1, "only the initial training");
        assert_eq!(stats.retrainings, 1);
        assert_eq!(stats.swap_staleness_events, 0);
    }
}
