//! Self-healing rule lifecycle: canary-gated installs and last-known-good
//! rollback.
//!
//! The paper's dynamic driver installs every retrained rule set
//! unconditionally — a retraining over a corrupted or shifted window can
//! silently replace a good repository with a bad one, and the SLO
//! watchdog can only page about it afterward. This module closes the
//! detect→act loop:
//!
//! * **Canary gate** ([`canary_compare`]) — before a candidate
//!   [`KnowledgeRepository`] is installed, shadow-replay both the
//!   candidate and the incumbent against the tail of the training window
//!   and compare precision/recall. A candidate that regresses beyond
//!   [`LifecycleConfig::margin`] on either objective is rejected: the
//!   incumbent keeps serving and the next scheduled retraining is the
//!   retry.
//! * **Known-good ring** ([`KnownGoodRing`]) — a bounded ring of
//!   canary-accepted repository versions. When the live SLO watchdog
//!   pages, the driver rolls back to the newest known-good version older
//!   than the one that degraded, and schedules an early retrain with
//!   exponential backoff ([`RetrainBackoff`]) instead of waiting the
//!   full `W_R` weeks.
//!
//! Both are off by default ([`LifecycleMode::Off`]) and cost nothing on
//! the serving hot path when disabled — the hardened drivers are
//! asserted bit-identical to the lifecycle-free schedule in that case.

use crate::evaluation::{score, Accuracy};
use crate::knowledge::KnowledgeRepository;
use crate::predictor::Predictor;
use raslog::{CleanEvent, Duration};
use serde::Serialize;
use std::collections::VecDeque;

/// Which self-healing stages are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum LifecycleMode {
    /// No gate, no rollback: every retraining installs unconditionally
    /// (the paper's schedule, and bit-identical to it).
    #[default]
    Off,
    /// Canary-gate installs; no automatic rollback.
    Canary,
    /// Canary-gate installs and roll back on SLO pages.
    CanaryRollback,
}

impl LifecycleMode {
    /// Whether any lifecycle machinery is active.
    pub fn enabled(&self) -> bool {
        *self != LifecycleMode::Off
    }

    /// Whether automatic rollback is active.
    pub fn rollback(&self) -> bool {
        *self == LifecycleMode::CanaryRollback
    }
}

impl std::fmt::Display for LifecycleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LifecycleMode::Off => "off",
            LifecycleMode::Canary => "canary",
            LifecycleMode::CanaryRollback => "canary+rollback",
        })
    }
}

impl std::str::FromStr for LifecycleMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(LifecycleMode::Off),
            "canary" => Ok(LifecycleMode::Canary),
            "canary+rollback" => Ok(LifecycleMode::CanaryRollback),
            other => Err(format!(
                "expected off|canary|canary+rollback, got `{other}`"
            )),
        }
    }
}

/// Rule-lifecycle parameters.
#[derive(Debug, Clone, Copy)]
pub struct LifecycleConfig {
    /// Which stages are active.
    pub mode: LifecycleMode,
    /// Weeks of the training-window tail the canary replays (the most
    /// recent data both candidate and incumbent are judged on).
    pub canary_tail_weeks: i64,
    /// How much worse than the incumbent a candidate may score on the
    /// tail (precision and recall each) before it is rejected.
    pub margin: f64,
    /// How many canary-accepted repository versions the known-good ring
    /// retains for rollback.
    pub known_good_capacity: usize,
    /// Weeks until the first early retrain after a rollback.
    pub backoff_base_weeks: i64,
    /// Cap on the exponential early-retrain backoff.
    pub backoff_cap_weeks: i64,
    /// Floors and burn windows of the live SLO watchdog that triggers
    /// rollback (only read under [`LifecycleMode::CanaryRollback`]).
    pub slo: crate::slo::SloConfig,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            mode: LifecycleMode::Off,
            canary_tail_weeks: 1,
            margin: 0.05,
            known_good_capacity: 4,
            backoff_base_weeks: 1,
            backoff_cap_weeks: 8,
            slo: crate::slo::SloConfig::default(),
        }
    }
}

/// What the canary shadow-replay measured.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CanaryVerdict {
    /// Whether the candidate may be installed.
    pub accepted: bool,
    /// Candidate accuracy over the canary tail.
    pub candidate: Accuracy,
    /// Incumbent accuracy over the same tail.
    pub incumbent: Accuracy,
}

fn shadow_score(
    repo: &KnowledgeRepository,
    warm: &[CleanEvent],
    tail: &[CleanEvent],
    window: Duration,
) -> Accuracy {
    let mut predictor = Predictor::new(repo, window);
    predictor.set_latency_sampling(0);
    predictor.warm_up(warm);
    let warnings = predictor.observe_all(tail);
    score(&warnings, tail)
}

/// Shadow-replays `candidate` and `incumbent` over the canary `tail`
/// (both warmed up with `warm`, the events immediately preceding it) and
/// accepts the candidate unless it regresses more than `margin` on
/// precision or recall.
///
/// The replay reuses the production [`Predictor`] so a candidate is
/// judged by exactly the matcher that would serve it; latency sampling
/// is disabled so the canary leaves no trace in predictor metrics.
pub fn canary_compare(
    candidate: &KnowledgeRepository,
    incumbent: &KnowledgeRepository,
    warm: &[CleanEvent],
    tail: &[CleanEvent],
    window: Duration,
    margin: f64,
) -> CanaryVerdict {
    let cand = shadow_score(candidate, warm, tail, window);
    let inc = shadow_score(incumbent, warm, tail, window);
    let accepted = cand.precision() + margin >= inc.precision()
        && cand.recall() + margin >= inc.recall();
    CanaryVerdict {
        accepted,
        candidate: cand,
        incumbent: inc,
    }
}

/// A bounded ring of canary-accepted repository versions, newest last.
///
/// Eviction never removes the currently-serving version: when the ring
/// is full, the oldest *non-serving* entry goes. (A rollback marks an
/// old version as serving again; later installs must not evict it while
/// it is the thing actually predicting.)
#[derive(Debug, Clone, Default)]
pub struct KnownGoodRing {
    capacity: usize,
    entries: VecDeque<(u64, KnowledgeRepository)>,
    serving: u64,
}

impl KnownGoodRing {
    /// A ring retaining up to `capacity` known-good versions.
    pub fn new(capacity: usize) -> Self {
        KnownGoodRing {
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            serving: 0,
        }
    }

    /// Records a canary-accepted install; the new version becomes the
    /// serving one. When full, the oldest entry *other than the one
    /// serving right now* is evicted first — so a version a rollback
    /// just marked as serving survives the next install (the ring may
    /// transiently hold one extra entry to guarantee that).
    pub fn push(&mut self, version: u64, repo: KnowledgeRepository) {
        self.entries.retain(|(v, _)| *v != version);
        while self.entries.len() >= self.capacity {
            let Some(idx) = self
                .entries
                .iter()
                .position(|(v, _)| *v != self.serving)
            else {
                break; // only the serving version remains; keep it
            };
            self.entries.remove(idx);
        }
        self.entries.push_back((version, repo));
        self.serving = version;
    }

    /// Marks `version` as the one currently serving (a rollback).
    pub fn mark_serving(&mut self, version: u64) {
        self.serving = version;
    }

    /// The version currently marked as serving.
    pub fn serving(&self) -> u64 {
        self.serving
    }

    /// The newest known-good version strictly older than `version`
    /// (the rollback target when `version` degraded).
    pub fn newest_before(&self, version: u64) -> Option<(u64, KnowledgeRepository)> {
        self.entries
            .iter()
            .filter(|(v, _)| *v < version)
            .max_by_key(|(v, _)| *v)
            .map(|(v, r)| (*v, r.clone()))
    }

    /// Versions currently retained, oldest first.
    pub fn versions(&self) -> Vec<u64> {
        self.entries.iter().map(|(v, _)| *v).collect()
    }

    /// The retained repository stamped `version`, if any.
    pub fn get(&self, version: u64) -> Option<KnowledgeRepository> {
        self.entries
            .iter()
            .find(|(v, _)| *v == version)
            .map(|(_, r)| r.clone())
    }

    /// Retained `(version, repository)` entries, oldest first (registry
    /// checkpointing).
    pub fn entries(&self) -> Vec<(u64, KnowledgeRepository)> {
        self.entries.iter().cloned().collect()
    }

    /// Rebuilds a ring from checkpointed entries (crash recovery).
    pub fn restore(
        capacity: usize,
        entries: Vec<(u64, KnowledgeRepository)>,
        serving: u64,
    ) -> Self {
        KnownGoodRing {
            capacity: capacity.max(1),
            entries: entries.into_iter().collect(),
            serving,
        }
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring holds nothing yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Exponential early-retrain backoff after rollbacks: the first page
/// schedules a retrain `base` weeks out, each consecutive unhealthy
/// cycle doubles it up to `cap`, and one healthy cycle resets to the
/// regular `W_R` cadence.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetrainBackoff {
    current: Option<i64>,
}

impl RetrainBackoff {
    /// Called when a cycle paged: returns the weeks until the next
    /// (early) retrain.
    pub fn on_page(&mut self, base: i64, cap: i64) -> i64 {
        let next = match self.current {
            None => base.max(1),
            Some(b) => (b * 2).min(cap.max(1)),
        };
        self.current = Some(next);
        next
    }

    /// Called when a cycle was healthy: back to the regular cadence.
    pub fn on_healthy(&mut self) {
        self.current = None;
    }

    /// The backoff in force, if any.
    pub fn current(&self) -> Option<i64> {
        self.current
    }
}

/// Lifecycle accounting for one driver run, exported as `lifecycle.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LifecycleOutcome {
    /// Canary shadow-replays performed.
    pub canaries_run: usize,
    /// Candidates that passed and were installed.
    pub canaries_accepted: usize,
    /// Candidates rejected (incumbent kept serving).
    pub canaries_rejected: usize,
    /// Rollbacks to a known-good version.
    pub rollbacks: usize,
    /// Retrains rescheduled early by the backoff.
    pub early_retrains: usize,
    /// Known-good versions retained at end of run.
    pub known_good: usize,
    /// SLO pages observed by the live watchdog.
    pub pages: usize,
}

impl dml_obs::MetricSource for LifecycleOutcome {
    fn export(&self, registry: &mut dml_obs::Registry) {
        registry.counter_add("lifecycle.canaries_run", self.canaries_run as u64);
        registry.counter_add("lifecycle.canaries_accepted", self.canaries_accepted as u64);
        registry.counter_add("lifecycle.canaries_rejected", self.canaries_rejected as u64);
        registry.counter_add("lifecycle.rollbacks", self.rollbacks as u64);
        registry.counter_add("lifecycle.early_retrains", self.early_retrains as u64);
        registry.counter_add("lifecycle.pages", self.pages as u64);
        registry.gauge_set("lifecycle.known_good", self.known_good as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{EventTypeId, Timestamp};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    /// {1,2} → fatal 100 at +200 s, repeated.
    fn patterned(weeks_of: i64) -> Vec<CleanEvent> {
        let mut events = Vec::new();
        for i in 0..weeks_of * 12 {
            let base = i * 50_000;
            events.push(ev(base, 1, false));
            events.push(ev(base + 60, 2, false));
            events.push(ev(base + 200, 100, true));
        }
        events
    }

    fn trained(events: &[CleanEvent]) -> KnowledgeRepository {
        crate::meta::MetaLearner::new(crate::config::FrameworkConfig {
            window: Duration::from_secs(300),
            ..crate::config::FrameworkConfig::default()
        })
        .train(events)
        .repo
    }

    #[test]
    fn canary_accepts_an_equivalent_candidate() {
        let log = patterned(4);
        let repo = trained(&log[..24]);
        let verdict = canary_compare(
            &repo,
            &repo,
            &log[..12],
            &log[12..],
            Duration::from_secs(300),
            0.05,
        );
        assert!(verdict.accepted, "{verdict:?}");
        assert_eq!(verdict.candidate, verdict.incumbent);
    }

    #[test]
    fn canary_rejects_an_empty_candidate_against_a_working_incumbent() {
        let log = patterned(4);
        let incumbent = trained(&log[..24]);
        assert!(!incumbent.is_empty());
        let empty = KnowledgeRepository::default();
        let verdict = canary_compare(
            &empty,
            &incumbent,
            &log[..12],
            &log[12..],
            Duration::from_secs(300),
            0.05,
        );
        assert!(!verdict.accepted, "{verdict:?}");
        assert_eq!(verdict.candidate.recall(), 0.0);
        assert!(verdict.incumbent.recall() > 0.9);
    }

    #[test]
    fn canary_accepts_anything_against_an_empty_incumbent() {
        let log = patterned(4);
        let verdict = canary_compare(
            &KnowledgeRepository::default(),
            &KnowledgeRepository::default(),
            &log[..12],
            &log[12..],
            Duration::from_secs(300),
            0.0,
        );
        assert!(verdict.accepted, "nothing to regress from: {verdict:?}");
    }

    #[test]
    fn ring_evicts_oldest_non_serving() {
        let mut ring = KnownGoodRing::new(2);
        let repo = KnowledgeRepository::default();
        ring.push(1, repo.clone());
        ring.push(2, repo.clone());
        ring.push(3, repo.clone());
        assert_eq!(ring.versions(), vec![2, 3]);
        assert_eq!(ring.serving(), 3);
    }

    #[test]
    fn ring_never_evicts_the_serving_version() {
        let mut ring = KnownGoodRing::new(2);
        let repo = KnowledgeRepository::default();
        ring.push(1, repo.clone());
        ring.push(2, repo.clone());
        // Roll back to v1: it is serving and must survive later pushes.
        ring.mark_serving(1);
        ring.push(3, repo.clone());
        assert!(ring.versions().contains(&1), "{:?}", ring.versions());
        // The push made v3 serving again.
        assert_eq!(ring.serving(), 3);
    }

    #[test]
    fn ring_restores_from_checkpointed_entries() {
        let mut ring = KnownGoodRing::new(3);
        let repo = KnowledgeRepository::default();
        ring.push(1, repo.clone());
        ring.push(2, repo.clone());
        ring.mark_serving(1);
        let restored = KnownGoodRing::restore(3, ring.entries(), ring.serving());
        assert_eq!(restored.versions(), ring.versions());
        assert_eq!(restored.serving(), 1);
        assert!(restored.get(2).is_some());
        assert!(restored.get(9).is_none());
    }

    #[test]
    fn ring_newest_before_skips_newer_versions() {
        let mut ring = KnownGoodRing::new(4);
        let repo = KnowledgeRepository::default();
        for v in [1, 2, 4] {
            ring.push(v, repo.clone());
        }
        assert_eq!(ring.newest_before(4).map(|(v, _)| v), Some(2));
        assert_eq!(ring.newest_before(1).map(|(v, _)| v), None);
    }

    #[test]
    fn backoff_doubles_and_caps_then_resets() {
        let mut b = RetrainBackoff::default();
        assert_eq!(b.on_page(1, 8), 1);
        assert_eq!(b.on_page(1, 8), 2);
        assert_eq!(b.on_page(1, 8), 4);
        assert_eq!(b.on_page(1, 8), 8);
        assert_eq!(b.on_page(1, 8), 8, "capped");
        b.on_healthy();
        assert_eq!(b.current(), None);
        assert_eq!(b.on_page(1, 8), 1, "reset after a healthy cycle");
    }

    #[test]
    fn mode_parses_cli_spellings() {
        assert_eq!("off".parse::<LifecycleMode>().unwrap(), LifecycleMode::Off);
        assert_eq!(
            "canary".parse::<LifecycleMode>().unwrap(),
            LifecycleMode::Canary
        );
        assert_eq!(
            "canary+rollback".parse::<LifecycleMode>().unwrap(),
            LifecycleMode::CanaryRollback
        );
        assert!("rollback".parse::<LifecycleMode>().is_err());
        assert!(!LifecycleMode::Off.enabled());
        assert!(LifecycleMode::Canary.enabled());
        assert!(!LifecycleMode::Canary.rollback());
        assert!(LifecycleMode::CanaryRollback.rollback());
    }
}
