//! The dynamic retraining driver.
//!
//! Walks a multi-year preprocessed log week by week, retraining every
//! `W_R` weeks on a training window chosen by policy:
//!
//! * [`TrainingPolicy::Static`] — the initial training set forever (the
//!   baseline the dynamic approach beats in Fig. 9);
//! * [`TrainingPolicy::SlidingWeeks`] — the most recent `n` weeks
//!   (the paper recommends ~6 months: the accuracy of *dynamic-whole* at a
//!   fraction of the cost);
//! * [`TrainingPolicy::Growing`] — all history so far (*dynamic-whole*).
//!
//! The driver records the per-week accuracy series (Figs. 7, 9–11, 13) and
//! the rule churn at every retraining (Fig. 12).

use crate::config::FrameworkConfig;
use crate::evaluation::{weekly_series, Accuracy, WeekAccuracy};
use crate::knowledge::KnowledgeRepository;
use crate::meta::MetaLearner;
use crate::predictor::{Predictor, PredictorMetrics, Warning};
use crate::rules::RuleKind;
use raslog::store::window;
use raslog::{CleanEvent, Timestamp, WEEK_MS};
use serde::{Deserialize, Serialize};

/// How the training window moves at each retraining.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainingPolicy {
    /// Train once on the initial window; never retrain.
    Static,
    /// Retrain on the most recent `n` weeks.
    SlidingWeeks(i64),
    /// Retrain on all history from week 0.
    Growing,
}

/// Driver parameters.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Framework (learner/reviser/predictor) parameters.
    pub framework: FrameworkConfig,
    /// Training-window policy.
    pub policy: TrainingPolicy,
    /// Length of the initial training set, in weeks (the paper uses six
    /// months ≈ 26 weeks).
    pub initial_training_weeks: i64,
    /// Restrict training and prediction to one rule kind (`None` = full
    /// meta-learner). Fig. 7's base-learner baselines set this.
    pub only_kind: Option<RuleKind>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            framework: FrameworkConfig::default(),
            policy: TrainingPolicy::SlidingWeeks(26),
            initial_training_weeks: 26,
            only_kind: None,
        }
    }
}

/// Rule churn at one retraining (one x-position of Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnRecord {
    /// The week at which retraining happened.
    pub week: i64,
    /// Rules surviving from the previous repository.
    pub unchanged: usize,
    /// Rules newly added by the meta-learner.
    pub added: usize,
    /// Rules dropped because the meta-learner no longer generates them.
    pub removed_by_learner: usize,
    /// Candidate rules discarded by the reviser at this retraining.
    pub removed_by_reviser: usize,
    /// Repository size after this retraining.
    pub total: usize,
}

/// The full outcome of a driver run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct DriverReport {
    /// Accuracy per test week.
    pub weekly: Vec<WeekAccuracy>,
    /// Churn at every retraining.
    pub churn: Vec<ChurnRecord>,
    /// All warnings issued during testing (issue-time ordered).
    pub warnings: Vec<Warning>,
    /// Aggregate accuracy over the whole test span.
    pub overall: Accuracy,
    /// Predictor hot-path counters summed over all test blocks
    /// (warm-up excluded).
    pub predictor_metrics: PredictorMetrics,
    /// Staleness/overlap accounting when the run came from the
    /// overlapped driver (`None` for the serial driver).
    pub overlap: Option<crate::overlap::OverlapStats>,
}

impl DriverReport {
    /// Mean weekly precision (ignoring weeks without warnings *and*
    /// failures).
    pub fn mean_precision(&self) -> f64 {
        mean_of(&self.weekly, |a| {
            (a.true_warnings + a.false_warnings > 0).then(|| a.precision())
        })
    }

    /// Mean weekly recall (ignoring weeks without failures).
    pub fn mean_recall(&self) -> f64 {
        mean_of(&self.weekly, |a| {
            (a.covered_fatals + a.missed_fatals > 0).then(|| a.recall())
        })
    }
}

impl dml_obs::MetricSource for DriverReport {
    fn export(&self, registry: &mut dml_obs::Registry) {
        registry.counter_add("driver.retrainings", self.churn.len() as u64);
        registry.counter_add("driver.warnings", self.warnings.len() as u64);
        registry.counter_add("driver.test_weeks", self.weekly.len() as u64);
        registry.gauge_set("driver.precision", self.overall.precision());
        registry.gauge_set("driver.recall", self.overall.recall());
        registry.gauge_set("driver.mean_weekly_precision", self.mean_precision());
        registry.gauge_set("driver.mean_weekly_recall", self.mean_recall());
        if let Some(last) = self.churn.last() {
            registry.gauge_set("driver.rules_installed", last.total as f64);
        }
        for c in &self.churn {
            registry.trace(format!(
                "retrain week={} +{} -{} kept={} total={}",
                c.week, c.added, c.removed_by_learner, c.unchanged, c.total
            ));
        }
        if let Some(o) = &self.overlap {
            registry.counter_add("driver.swap_staleness_events", o.swap_staleness_events);
            registry.counter_add("driver.swaps_mid_block", o.swaps_mid_block as u64);
            registry.counter_add("driver.swaps_at_boundary", o.swaps_at_boundary as u64);
            registry.gauge_set("driver.retrain_overlap_ms", o.retrain_overlap_ms());
            registry.gauge_set("driver.retrain_wall_ms", o.retrain_wall_ms);
            registry.gauge_set("driver.blocked_wait_ms", o.blocked_wait_ms);
        }
        self.predictor_metrics.export(registry);
    }
}

fn mean_of(weekly: &[WeekAccuracy], f: impl Fn(&Accuracy) -> Option<f64>) -> f64 {
    let values: Vec<f64> = weekly.iter().filter_map(|w| f(&w.accuracy)).collect();
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Runs the dynamic framework over `events` (time-sorted, preprocessed),
/// which span `total_weeks` weeks starting at week 0.
///
/// Weeks `0..initial_training_weeks` are the first training set; testing
/// starts right after and runs to the end of the log.
pub fn run_driver(events: &[CleanEvent], total_weeks: i64, config: &DriverConfig) -> DriverReport {
    assert!(
        config.initial_training_weeks > 0 && config.initial_training_weeks < total_weeks,
        "initial training window must leave room for testing"
    );
    let meta = MetaLearner::new(config.framework);
    let train = |from_week: i64, to_week: i64| {
        let slice = window(
            events,
            Timestamp(from_week * WEEK_MS),
            Timestamp(to_week * WEEK_MS),
        );
        match config.only_kind {
            None => meta.train(slice),
            Some(kind) => meta.train_single_kind(slice, kind),
        }
    };

    let first_test_week = config.initial_training_weeks;
    let mut outcome = train(0, first_test_week);
    // Repositories are numbered by training count (1 = initial training),
    // so warnings can name the exact rule set that issued them.
    outcome.repo.set_version(1);
    let mut report = DriverReport::default();
    report.churn.push(ChurnRecord {
        week: first_test_week,
        unchanged: 0,
        added: outcome.repo.len(),
        removed_by_learner: 0,
        removed_by_reviser: outcome.removed_by_reviser,
        total: outcome.repo.len(),
    });

    let retrain_every = config.framework.retrain_weeks.max(1);
    let mut week = first_test_week;
    while week < total_weeks {
        let block_end = (week + retrain_every).min(total_weeks);

        // Warm the predictor with the preceding week so windows and the
        // last-failure clock are primed at the block boundary.
        let mut predictor = Predictor::new(&outcome.repo, config.framework.window);
        let warm = window(
            events,
            Timestamp((week - 1).max(0) * WEEK_MS),
            Timestamp(week * WEEK_MS),
        );
        predictor.warm_up(warm);
        predictor.reset_metrics();
        let block = window(
            events,
            Timestamp(week * WEEK_MS),
            Timestamp(block_end * WEEK_MS),
        );
        report.warnings.extend(predictor.observe_all(block));
        report.predictor_metrics.merge(predictor.metrics());

        // Retrain for the next block.
        if block_end < total_weeks && config.policy != TrainingPolicy::Static {
            let (from, to) = match config.policy {
                TrainingPolicy::Static => unreachable!(),
                TrainingPolicy::SlidingWeeks(n) => ((block_end - n).max(0), block_end),
                TrainingPolicy::Growing => (0, block_end),
            };
            let mut next = train(from, to);
            let diff = KnowledgeRepository::churn(&outcome.repo, &next.repo);
            next.repo.set_version(report.churn.len() as u64 + 1);
            report.churn.push(ChurnRecord {
                week: block_end,
                unchanged: diff.unchanged,
                added: diff.added,
                removed_by_learner: diff.removed,
                removed_by_reviser: next.removed_by_reviser,
                total: next.repo.len(),
            });
            outcome = next;
        }
        week = block_end;
    }

    let test_events = window(
        events,
        Timestamp(first_test_week * WEEK_MS),
        Timestamp(total_weeks * WEEK_MS),
    );
    report.weekly = weekly_series(
        &report.warnings,
        test_events,
        first_test_week,
        total_weeks - 1,
    );
    report.overall = crate::evaluation::score(&report.warnings, test_events);
    record_lead_times(&mut report, test_events);
    report
}

/// Fills the report's lead-time histogram from its scored warnings. All
/// drivers call this after scoring, so `predict.lead_time_ms` is
/// measured identically in serial, hardened and overlapped runs.
pub(crate) fn record_lead_times(report: &mut DriverReport, test_events: &[CleanEvent]) {
    for lead in crate::evaluation::lead_times_ms(&report.warnings, test_events) {
        report.predictor_metrics.lead_time_ms.record(lead as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{Duration, EventTypeId};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    /// A stable cascade {1,2} → 100 planted throughout `weeks` weeks.
    fn stable_log(weeks: i64) -> Vec<CleanEvent> {
        let week_secs = WEEK_MS / 1000;
        let mut events = Vec::new();
        for w in 0..weeks {
            for i in 0..12 {
                let base = w * week_secs + i * 50_000;
                events.push(ev(base, 1, false));
                events.push(ev(base + 60, 2, false));
                events.push(ev(base + 200, 100, true));
            }
        }
        events
    }

    /// The same cascade, but after `switch_week` the precursors change to
    /// {3,4} (a concept drift the static policy cannot follow).
    fn drifting_log(weeks: i64, switch_week: i64) -> Vec<CleanEvent> {
        let week_secs = WEEK_MS / 1000;
        let mut events = Vec::new();
        for w in 0..weeks {
            let (a, b) = if w < switch_week { (1, 2) } else { (3, 4) };
            for i in 0..12 {
                let base = w * week_secs + i * 50_000;
                events.push(ev(base, a, false));
                events.push(ev(base + 60, b, false));
                events.push(ev(base + 200, 100, true));
            }
        }
        events
    }

    fn quick_config(policy: TrainingPolicy) -> DriverConfig {
        DriverConfig {
            framework: FrameworkConfig {
                window: Duration::from_secs(300),
                retrain_weeks: 2,
                ..FrameworkConfig::default()
            },
            policy,
            initial_training_weeks: 4,
            only_kind: None,
        }
    }

    #[test]
    fn stable_pattern_is_predicted_well() {
        let report = run_driver(&stable_log(12), 12, &quick_config(TrainingPolicy::Growing));
        assert!(
            report.overall.recall() > 0.9,
            "recall {}",
            report.overall.recall()
        );
        assert!(
            report.overall.precision() > 0.9,
            "precision {}",
            report.overall.precision()
        );
        assert_eq!(report.weekly.len(), 8);
        assert!(!report.churn.is_empty());
    }

    #[test]
    fn dynamic_policy_recovers_from_drift_where_static_does_not() {
        let log = drifting_log(16, 8);
        let static_report = run_driver(&log, 16, &quick_config(TrainingPolicy::Static));
        let dynamic_report = run_driver(&log, 16, &quick_config(TrainingPolicy::SlidingWeeks(4)));

        // Accuracy in the final four weeks (well after the drift).
        let tail_recall = |r: &DriverReport| {
            let tail: Vec<_> = r.weekly.iter().filter(|w| w.week >= 12).collect();
            tail.iter().map(|w| w.accuracy.recall()).sum::<f64>() / tail.len() as f64
        };
        let s = tail_recall(&static_report);
        let d = tail_recall(&dynamic_report);
        assert!(
            d > s + 0.3,
            "dynamic tail recall {d} should beat static {s} decisively"
        );
    }

    #[test]
    fn churn_reflects_drift() {
        let log = drifting_log(16, 8);
        let report = run_driver(&log, 16, &quick_config(TrainingPolicy::SlidingWeeks(4)));
        // Retraining at week 10 trains on weeks 6..10 which mixes the two
        // regimes; by week 12 the old rules must be gone.
        let late = report
            .churn
            .iter()
            .find(|c| c.week == 12)
            .expect("retraining at week 12");
        assert!(late.total > 0);
        // Some retraining after the switch must remove old rules.
        let removed_after: usize = report
            .churn
            .iter()
            .filter(|c| c.week >= 9)
            .map(|c| c.removed_by_learner)
            .sum();
        assert!(removed_after > 0, "{:?}", report.churn);
    }

    #[test]
    fn static_policy_never_retrains() {
        let report = run_driver(&stable_log(12), 12, &quick_config(TrainingPolicy::Static));
        assert_eq!(report.churn.len(), 1, "only the initial training");
    }

    #[test]
    fn only_kind_restricts_rules() {
        let report = run_driver(
            &stable_log(12),
            12,
            &DriverConfig {
                only_kind: Some(RuleKind::Association),
                ..quick_config(TrainingPolicy::Growing)
            },
        );
        assert!(report
            .warnings
            .iter()
            .all(|w| w.kind == RuleKind::Association));
    }

    #[test]
    fn mean_metrics_skip_empty_weeks() {
        let report = run_driver(&stable_log(12), 12, &quick_config(TrainingPolicy::Growing));
        assert!(report.mean_precision() > 0.9);
        assert!(report.mean_recall() > 0.9);
    }

    #[test]
    #[should_panic(expected = "room for testing")]
    fn initial_window_must_leave_test_weeks() {
        run_driver(&stable_log(4), 4, &quick_config(TrainingPolicy::Growing));
    }

    #[test]
    fn warnings_carry_repo_versions_matching_the_churn_trace() {
        let report = run_driver(
            &stable_log(12),
            12,
            &quick_config(TrainingPolicy::SlidingWeeks(4)),
        );
        assert!(!report.warnings.is_empty());
        let trainings = report.churn.len() as u64;
        for w in &report.warnings {
            assert!(w.id.repo_version >= 1 && w.id.repo_version <= trainings);
            assert_eq!(w.id.repo_version, w.provenance.repo_version);
            assert_eq!(w.id, crate::predictor::WarningId::new(
                w.provenance.repo_version,
                w.rule,
                w.issued_at,
            ));
        }
        // Warnings from a later block carry a later version.
        let first = report.warnings.first().unwrap();
        let last = report.warnings.last().unwrap();
        assert_eq!(first.id.repo_version, 1);
        assert!(last.id.repo_version > 1, "retrained repos get new versions");
        // Ids are unique across the run.
        let mut ids: Vec<_> = report.warnings.iter().map(|w| w.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), report.warnings.len());
    }

    #[test]
    fn lead_time_histogram_measures_the_planted_cascade() {
        let report = run_driver(&stable_log(12), 12, &quick_config(TrainingPolicy::Growing));
        let h = &report.predictor_metrics.lead_time_ms;
        assert!(h.count() > 0, "hits must record lead times");
        // The cascade plants the fatal 140–200 s after the antecedent
        // completes, so every lead falls inside the 300 s window.
        assert!(h.min() > 0.0);
        assert!(h.max() <= 300_000.0, "max lead {}", h.max());
    }
}
