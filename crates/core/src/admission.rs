//! Event-storm admission control: a bounded ingest queue in front of
//! the predictor hot path.
//!
//! Sustained log bursts (a machine-check storm reporting the same
//! non-fatal condition from thousands of nodes) would otherwise grow the
//! serving pipeline's resident set without bound. [`AdmissionQueue`]
//! caps the number of events resident between arrival and prediction,
//! and sheds load with an explicit policy when the cap is hit:
//!
//! 1. **Duplicates first** — a non-fatal arrival whose event type is
//!    already queued is the cheapest to drop: the queued copy preserves
//!    the precursor signal for the sliding window.
//! 2. **Then other non-fatals** — a non-fatal arrival of a new type is
//!    shed only when the queue is full of distinct work.
//! 3. **Never fatals** — a fatal arrival always enters: it evicts the
//!    oldest queued non-fatal, or (if the whole queue is fatal) is
//!    admitted over capacity, counted in
//!    [`AdmissionStats::overflow_admits`].
//!
//! Draining is strictly FIFO, so when nothing is shed the event order —
//! and therefore driver output — is bit-identical to running without
//! admission control.

use raslog::CleanEvent;
use serde::Serialize;
use std::collections::VecDeque;

/// Admission-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AdmissionConfig {
    /// Maximum events resident in the ingest queue. Fatal arrivals into
    /// an all-fatal queue may exceed this transiently (counted).
    pub capacity: usize,
}

impl AdmissionConfig {
    /// Admission control with the given queue capacity.
    pub fn new(capacity: usize) -> Self {
        AdmissionConfig {
            capacity: capacity.max(1),
        }
    }
}

/// Why an event was shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ShedClass {
    /// A non-fatal whose type was already represented in the queue.
    Duplicate,
    /// A non-fatal of a type not otherwise queued.
    NonFatal,
}

/// Per-class shed counters and queue gauges, exported as `admission.*`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AdmissionStats {
    /// Configured queue capacity.
    pub capacity: usize,
    /// Events admitted into the queue.
    pub admitted: usize,
    /// Events handed onward to the predictor.
    pub drained: usize,
    /// Non-fatal events shed because their type was already queued.
    pub shed_duplicate: usize,
    /// Non-fatal events shed with no queued duplicate.
    pub shed_nonfatal: usize,
    /// Fatal events shed — the policy guarantees this stays 0; the
    /// counter exists so tests and CI can assert it.
    pub shed_fatal: usize,
    /// Fatal arrivals admitted over capacity (all-fatal queue).
    pub overflow_admits: usize,
    /// Peak resident queue length observed.
    pub high_watermark: usize,
}

impl AdmissionStats {
    /// Total events shed, all classes.
    pub fn shed_total(&self) -> usize {
        self.shed_duplicate + self.shed_nonfatal + self.shed_fatal
    }
}

impl dml_obs::MetricSource for AdmissionStats {
    fn export(&self, registry: &mut dml_obs::Registry) {
        registry.gauge_set("admission.capacity", self.capacity as f64);
        registry.counter_add("admission.admitted", self.admitted as u64);
        registry.counter_add("admission.drained", self.drained as u64);
        registry.counter_add("admission.shed_duplicate", self.shed_duplicate as u64);
        registry.counter_add("admission.shed_nonfatal", self.shed_nonfatal as u64);
        registry.counter_add("admission.shed_fatal", self.shed_fatal as u64);
        registry.counter_add("admission.overflow_admits", self.overflow_admits as u64);
        registry.gauge_set("admission.high_watermark", self.high_watermark as f64);
    }
}

/// The bounded ingest queue. Offer a burst of arrivals, then drain in
/// FIFO order into the predictor.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    queue: VecDeque<CleanEvent>,
    stats: AdmissionStats,
}

impl AdmissionQueue {
    /// An empty queue with the given policy.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionQueue {
            config,
            queue: VecDeque::with_capacity(config.capacity.min(4096)),
            stats: AdmissionStats {
                capacity: config.capacity,
                ..AdmissionStats::default()
            },
        }
    }

    fn note_shed(&mut self, class: ShedClass) {
        match class {
            ShedClass::Duplicate => self.stats.shed_duplicate += 1,
            ShedClass::NonFatal => self.stats.shed_nonfatal += 1,
        }
    }

    /// How a queued non-fatal at `idx` should be classified if evicted:
    /// a duplicate if its type appears anywhere else in the queue.
    fn classify_resident(&self, idx: usize) -> ShedClass {
        let ty = self.queue[idx].type_id;
        let duplicated = self
            .queue
            .iter()
            .enumerate()
            .any(|(i, e)| i != idx && e.type_id == ty);
        if duplicated {
            ShedClass::Duplicate
        } else {
            ShedClass::NonFatal
        }
    }

    /// Offers one arrival. Returns `true` if it was admitted.
    pub fn offer(&mut self, event: CleanEvent) -> bool {
        if self.queue.len() < self.config.capacity {
            self.queue.push_back(event);
            self.stats.admitted += 1;
            self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
            return true;
        }
        if !event.fatal {
            let class = if self.queue.iter().any(|e| e.type_id == event.type_id) {
                ShedClass::Duplicate
            } else {
                ShedClass::NonFatal
            };
            self.note_shed(class);
            return false;
        }
        // Fatal arrival into a full queue: evict the oldest non-fatal.
        if let Some(idx) = self.queue.iter().position(|e| !e.fatal) {
            let class = self.classify_resident(idx);
            self.queue.remove(idx);
            self.note_shed(class);
        } else {
            // Entirely fatal: admit over capacity rather than shed.
            self.stats.overflow_admits += 1;
        }
        self.queue.push_back(event);
        self.stats.admitted += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
        true
    }

    /// Pops admitted events in FIFO order into `f` until empty.
    pub fn drain(&mut self, mut f: impl FnMut(CleanEvent)) {
        while let Some(ev) = self.queue.pop_front() {
            self.stats.drained += 1;
            f(ev);
        }
    }

    /// Events currently resident.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Counters so far (capacity, sheds, watermark).
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raslog::{EventTypeId, Timestamp};

    fn ev(secs: i64, ty: u16, fatal: bool) -> CleanEvent {
        CleanEvent::new(Timestamp::from_secs(secs), EventTypeId(ty), fatal)
    }

    fn drain_all(q: &mut AdmissionQueue) -> Vec<CleanEvent> {
        let mut out = Vec::new();
        q.drain(|e| out.push(e));
        out
    }

    #[test]
    fn under_capacity_everything_is_admitted_in_order() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(8));
        for i in 0..5 {
            assert!(q.offer(ev(i, i as u16, false)));
        }
        let out = drain_all(&mut q);
        assert_eq!(out.len(), 5);
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time));
        let s = q.stats();
        assert_eq!(s.admitted, 5);
        assert_eq!(s.drained, 5);
        assert_eq!(s.shed_total(), 0);
        assert_eq!(s.high_watermark, 5);
    }

    #[test]
    fn full_queue_sheds_duplicates_before_distinct_nonfatals() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        assert!(q.offer(ev(0, 1, false)));
        assert!(q.offer(ev(1, 2, false)));
        // Type 1 already queued → shed as duplicate.
        assert!(!q.offer(ev(2, 1, false)));
        // Type 3 is new → shed as plain non-fatal.
        assert!(!q.offer(ev(3, 3, false)));
        let s = q.stats();
        assert_eq!(s.shed_duplicate, 1);
        assert_eq!(s.shed_nonfatal, 1);
        assert_eq!(s.shed_fatal, 0);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn fatal_arrivals_are_never_shed() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        assert!(q.offer(ev(0, 1, false)));
        assert!(q.offer(ev(1, 1, false)));
        // Fatal into a full queue evicts the oldest non-fatal (a
        // duplicate here: type 1 appears twice).
        assert!(q.offer(ev(2, 100, true)));
        let s = q.stats();
        assert_eq!(s.shed_duplicate, 1);
        assert_eq!(s.shed_fatal, 0);
        let out = drain_all(&mut q);
        assert!(out.iter().any(|e| e.fatal));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn all_fatal_queue_admits_over_capacity() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        assert!(q.offer(ev(0, 100, true)));
        assert!(q.offer(ev(1, 100, true)));
        assert!(q.offer(ev(2, 100, true)));
        let s = q.stats();
        assert_eq!(s.overflow_admits, 1);
        assert_eq!(s.shed_fatal, 0);
        assert_eq!(q.len(), 3, "fatal overflow is resident, not dropped");
        assert_eq!(s.high_watermark, 3);
    }

    #[test]
    fn stacked_fatal_overflows_stay_resident_and_drain_in_order() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        for i in 0..5 {
            assert!(q.offer(ev(i, 100, true)));
        }
        let s = q.stats();
        assert_eq!(s.overflow_admits, 3, "every arrival past capacity overflowed");
        assert_eq!(s.shed_total(), 0);
        assert_eq!(s.high_watermark, 5);
        assert_eq!(q.len(), 5);
        let out = drain_all(&mut q);
        assert!(out.iter().all(|e| e.fatal));
        let secs: Vec<i64> = out.iter().map(|e| e.time.as_secs()).collect();
        assert_eq!(secs, vec![0, 1, 2, 3, 4], "FIFO order survives overflow");
        assert_eq!(q.stats().drained, 5);
    }

    #[test]
    fn nonfatal_arrivals_are_still_shed_while_over_capacity() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        for i in 0..3 {
            assert!(q.offer(ev(i, 100, true)));
        }
        assert_eq!(q.stats().overflow_admits, 1);
        // The queue is over capacity and all-fatal: a non-fatal arrival
        // cannot evict anything and must be shed, not admitted.
        assert!(!q.offer(ev(3, 7, false)));
        let s = q.stats();
        assert_eq!(s.shed_nonfatal, 1);
        assert_eq!(s.shed_fatal, 0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn watermark_tracks_peak_not_current() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(16));
        for i in 0..10 {
            q.offer(ev(i, i as u16, false));
        }
        drain_all(&mut q);
        q.offer(ev(100, 1, false));
        assert_eq!(q.stats().high_watermark, 10);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn evicting_a_distinct_nonfatal_counts_as_nonfatal() {
        let mut q = AdmissionQueue::new(AdmissionConfig::new(2));
        assert!(q.offer(ev(0, 1, false)));
        assert!(q.offer(ev(1, 2, false)));
        assert!(q.offer(ev(2, 100, true)));
        let s = q.stats();
        assert_eq!(s.shed_nonfatal, 1, "evicted type 1 had no duplicate");
        assert_eq!(s.shed_duplicate, 0);
    }
}
