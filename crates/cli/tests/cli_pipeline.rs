//! End-to-end test of the `dml` binary: generate → stats → preprocess →
//! train → predict → evaluate, all through the file formats.

use std::process::Command;

fn dml() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dml"))
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("dml_cli_test_{}_{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_pipeline_through_the_binary() {
    let raw = tmp("raw.log");
    let clean = tmp("clean.log");
    let rules = tmp("rules.json");
    let warnings = tmp("warnings.jsonl");

    // generate
    let out = dml()
        .args([
            "generate", "--preset", "sdsc", "--weeks", "16", "--seed", "7", "--scale", "0.05",
            "--out", &raw,
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "generate: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // stats
    let out = dml()
        .args(["stats", "--in", &raw])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("records"), "{stdout}");
    assert!(stdout.contains("KERNEL"), "{stdout}");

    // preprocess
    let out = dml()
        .args([
            "preprocess",
            "--in",
            &raw,
            "--threshold",
            "300",
            "--out",
            &clean,
        ])
        .output()
        .expect("run preprocess");
    assert!(
        out.status.success(),
        "preprocess: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("compression"), "{stderr}");

    // train on the first 12 weeks
    let out = dml()
        .args([
            "train",
            "--in",
            &clean,
            "--to-week",
            "12",
            "--rules",
            &rules,
        ])
        .output()
        .expect("run train");
    assert!(
        out.status.success(),
        "train: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("rules kept"));

    // predict on the rest
    let out = dml()
        .args([
            "predict",
            "--in",
            &clean,
            "--rules",
            &rules,
            "--from-week",
            "12",
            "--out",
            &warnings,
        ])
        .output()
        .expect("run predict");
    assert!(
        out.status.success(),
        "predict: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // evaluate
    let out = dml()
        .args([
            "evaluate",
            "--in",
            &clean,
            "--warnings",
            &warnings,
            "--from-week",
            "12",
        ])
        .output()
        .expect("run evaluate");
    assert!(
        out.status.success(),
        "evaluate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("precision:"), "{stdout}");
    assert!(stdout.contains("recall   :"), "{stdout}");
    // Extract recall and require a sane floor.
    let recall_line = stdout.lines().find(|l| l.starts_with("recall")).unwrap();
    let recall: f64 = recall_line
        .split(':')
        .nth(1)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(recall > 0.2, "recall {recall} too low\n{stdout}");

    for f in [raw, clean, rules, warnings] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn discover_catalog_mode_works() {
    let raw = tmp("raw2.log");
    let clean = tmp("clean2.log");
    let out = dml()
        .args([
            "generate", "--preset", "anl", "--weeks", "3", "--seed", "9", "--scale", "0.05",
            "--out", &raw,
        ])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = dml()
        .args([
            "preprocess",
            "--in",
            &raw,
            "--out",
            &clean,
            "--catalog",
            "discover",
        ])
        .output()
        .expect("run preprocess");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("discovered"));
    for f in [raw, clean] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn helpful_errors() {
    let out = dml().output().expect("run bare");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = dml().args(["frobnicate"]).output().expect("run unknown");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = dml()
        .args(["generate", "--weeks", "3"])
        .output()
        .expect("run incomplete");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--preset"));
}
