//! # dml-cli — file-oriented front end
//!
//! The `dml` binary drives the whole pipeline over files, the way an
//! operations team would deploy it:
//!
//! ```text
//! dml generate   --preset sdsc --weeks 30 --seed 7 --out raw.log
//! dml stats      --in raw.log
//! dml preprocess --in raw.log --threshold 300 --out clean.log
//! dml train      --in clean.log --to-week 20 --rules rules.json
//! dml predict    --in clean.log --from-week 20 --rules rules.json --out warnings.jsonl
//! dml evaluate   --in clean.log --from-week 20 --warnings warnings.jsonl
//! ```
//!
//! Raw logs use the pipe-separated format of [`raslog::io`]; preprocessed
//! logs use the compact clean-event format; rules travel as the JSON
//! document of [`dml_core::persist`]; warnings as JSON lines.

pub mod args;
pub mod commands;

/// Error type for all commands: a user-facing message.
pub type CliError = String;

/// Runs one command line (without the program name). Exposed for tests.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = argv
        .split_first()
        .ok_or_else(|| format!("no command given\n{}", usage()))?;
    let args = args::Args::parse_with_switches(rest, &["quiet", "chaos"])?;
    if args.switch("quiet") {
        dml_obs::log::set_level(dml_obs::log::Level::Error);
    }
    match cmd.as_str() {
        "generate" => commands::generate::run(&args),
        "stats" => commands::stats::run(&args),
        "preprocess" => commands::preprocess_cmd::run(&args),
        "train" => commands::train::run(&args),
        "predict" => commands::predict::run(&args),
        "evaluate" => commands::evaluate::run(&args),
        "fleet" => commands::fleet::run(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

/// The usage string.
pub fn usage() -> &'static str {
    "usage: dml <generate|stats|preprocess|train|predict|evaluate|fleet> [--flag value]... [--quiet]\n\
     run `dml <command>` with missing flags to see what it needs\n\
     --quiet (or DML_LOG=error) silences progress output; \
     --metrics-json FILE dumps stage metrics where supported \
     (--metrics-openmetrics FILE for Prometheus exposition text; \
     fleet also takes --metrics-history FILE for per-week time series, \
     --rollout off|staged, --rollout-stages FRACS and --pin-shard S=V,.. \
     for staged rule rollouts through the versioned registry)"
}
