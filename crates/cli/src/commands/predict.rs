//! `dml predict` — run the event-driven predictor over a clean log.

use crate::args::Args;
use crate::CliError;
use dml_core::{load_repository_file, Predictor};
use raslog::store::window;
use raslog::{Duration, Timestamp, WEEK_MS};
use std::io::Write;

/// `--in CLEAN --rules RULES.json --out WARNINGS.jsonl
///  [--from-week A] [--window SECS] [--metrics-json FILE]
///  [--metrics-openmetrics FILE]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let input = args.required("in")?;
    let rules = args.required("rules")?;
    let out = args.required("out")?;
    let from_week: i64 = args.parsed_or("from-week", 0)?;
    let window_secs: i64 = args.parsed_or("window", 300)?;

    let events = crate::commands::read_clean(input)?;
    let repo = load_repository_file(rules).map_err(|e| e.to_string())?;
    let test = window(
        &events,
        Timestamp(from_week * WEEK_MS),
        Timestamp(i64::MAX / 2),
    );
    let mut predictor = Predictor::new(&repo, Duration::from_secs(window_secs));
    // Warm up on the events before the prediction span, then reset the
    // counters so the metrics describe only the prediction span.
    predictor.warm_up(window(
        &events,
        Timestamp(i64::MIN / 2),
        Timestamp(from_week * WEEK_MS),
    ));
    predictor.reset_metrics();
    let warnings = predictor.observe_all(test);

    let mut writer = crate::commands::create(out)?;
    for w in &warnings {
        let line = serde_json::to_string(w).map_err(|e| format!("encode warning: {e}"))?;
        writeln!(writer, "{line}").map_err(|e| format!("write {out}: {e}"))?;
    }
    dml_obs::info!(
        "{} warnings over {} events → {out}",
        warnings.len(),
        test.len()
    );
    let mut registry = dml_obs::Registry::new();
    registry.collect(predictor.metrics());
    crate::commands::write_metrics_if_asked(args, &registry)?;
    Ok(())
}
