//! `dml generate` — synthesize a raw RAS log file.

use crate::args::Args;
use crate::CliError;
use bgl_sim::{Generator, SystemPreset};

/// `--preset anl|sdsc --weeks N --out FILE [--seed N] [--scale X]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let preset_name = args.required("preset")?;
    let weeks: i64 = args.parsed("weeks")?;
    let out = args.required("out")?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let scale: f64 = args.parsed_or("scale", 1.0)?;

    let preset = match preset_name {
        "anl" => SystemPreset::anl(),
        "sdsc" => SystemPreset::sdsc(),
        other => return Err(format!("unknown preset `{other}` (anl|sdsc)")),
    }
    .with_weeks(weeks)
    .with_volume_scale(scale);

    let generator = Generator::new(preset, seed);
    let mut writer = crate::commands::create(out)?;
    let mut total = 0usize;
    for week in 0..weeks {
        let (events, _) = generator.week_events(week);
        total += events.len();
        raslog::io::write_log(&events, &mut writer).map_err(|e| format!("write {out}: {e}"))?;
    }
    dml_obs::info!("generated {total} records over {weeks} weeks → {out}");
    Ok(())
}
