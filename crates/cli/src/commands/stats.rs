//! `dml stats` — summarize a raw RAS log file.

use crate::args::Args;
use crate::CliError;
use raslog::{Facility, LogStore};

/// `--in FILE`
pub fn run(args: &Args) -> Result<(), CliError> {
    let input = args.required("in")?;
    let store = LogStore::from_events(crate::commands::read_raw(input)?);
    println!("{input}: {} records, {} weeks", store.len(), store.weeks());
    println!("\nper facility:");
    let counts = store.counts_by_facility();
    for fac in Facility::ALL {
        if counts[fac.index()] > 0 {
            println!("  {:<10} {:>9}", fac.to_string(), counts[fac.index()]);
        }
    }
    println!("\nper logged severity:");
    for (sev, n) in store.counts_by_severity() {
        if n > 0 {
            println!("  {:<8} {:>9}", sev.to_string(), n);
        }
    }
    Ok(())
}
