//! `dml evaluate` — score warnings against the failures in a clean log.

use crate::args::Args;
use crate::CliError;
use dml_core::{evaluation, Warning};
use raslog::store::window;
use raslog::{Timestamp, WEEK_MS};
use std::io::BufRead;

/// `--in CLEAN --warnings WARNINGS.jsonl [--from-week A]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let input = args.required("in")?;
    let warnings_path = args.required("warnings")?;
    let from_week: i64 = args.parsed_or("from-week", 0)?;

    let events = crate::commands::read_clean(input)?;
    let test = window(
        &events,
        Timestamp(from_week * WEEK_MS),
        Timestamp(i64::MAX / 2),
    );

    let file = std::fs::File::open(warnings_path)
        .map_err(|e| format!("cannot open {warnings_path}: {e}"))?;
    let mut warnings: Vec<Warning> = Vec::new();
    for (i, line) in std::io::BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("{warnings_path}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        warnings.push(
            serde_json::from_str(&line)
                .map_err(|e| format!("{warnings_path} line {}: {e}", i + 1))?,
        );
    }

    let acc = evaluation::score(&warnings, test);
    println!("warnings : {}", warnings.len());
    println!("failures : {}", acc.covered_fatals + acc.missed_fatals);
    println!("precision: {:.3}", acc.precision());
    println!("recall   : {:.3}", acc.recall());
    println!(
        "true warnings {} / false alarms {} / covered {} / missed {}",
        acc.true_warnings, acc.false_warnings, acc.covered_fatals, acc.missed_fatals
    );
    Ok(())
}
