//! `dml preprocess` — categorize + filter a raw log into a clean log.

use crate::args::Args;
use crate::CliError;
use preprocess::{clean_log, discover_catalog, Categorizer, DiscoveryConfig, FilterConfig};
use raslog::Duration;

/// `--in RAW --out CLEAN [--threshold SECS] [--catalog standard|discover]
///  [--metrics-json FILE]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let input = args.required("in")?;
    let out = args.required("out")?;
    let threshold: i64 = args.parsed_or("threshold", 300)?;
    let catalog_mode = args.optional("catalog").unwrap_or("standard");

    let events = crate::commands::read_raw(input)?;
    let catalog = match catalog_mode {
        "standard" => bgl_sim::standard_catalog(),
        "discover" => {
            let (catalog, stats) = discover_catalog(&events, &DiscoveryConfig::default());
            dml_obs::info!(
                "discovered {} event types ({} severity conflicts)",
                stats.types_kept,
                stats.severity_conflicts
            );
            catalog
        }
        other => {
            return Err(format!(
                "unknown catalog mode `{other}` (standard|discover)"
            ))
        }
    };
    let categorizer = Categorizer::new(catalog);
    let config = FilterConfig::with_threshold(Duration::from_secs(threshold));
    let (clean, stats) = clean_log(&events, &categorizer, &config);

    let mut writer = crate::commands::create(out)?;
    raslog::io::write_clean_log(&clean, &mut writer).map_err(|e| format!("write {out}: {e}"))?;
    dml_obs::info!(
        "{} → {} events ({:.1} % compression; {} unknown records dropped, {} fake fatals corrected)",
        events.len(),
        clean.len(),
        100.0 * stats.overall_compression(),
        stats.categorize.unknown,
        stats.categorize.fake_fatals
    );
    let mut registry = dml_obs::Registry::new();
    registry.collect(&stats);
    crate::commands::write_metrics_if_asked(args, &registry)?;
    Ok(())
}
