//! `dml train` — train the meta-learner on a clean log, save the rules.

use crate::args::Args;
use crate::CliError;
use dml_core::{save_repository_file, FrameworkConfig, MetaLearner, RuleKind};
use raslog::store::window;
use raslog::{Duration, Timestamp, WEEK_MS};

/// `--in CLEAN --rules OUT.json [--from-week A] [--to-week B]
///  [--window SECS] [--no-reviser true] [--extended true]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let input = args.required("in")?;
    let rules_out = args.required("rules")?;
    let from_week: i64 = args.parsed_or("from-week", 0)?;
    let to_week: i64 = args.parsed_or("to-week", i64::MAX / WEEK_MS)?;
    let window_secs: i64 = args.parsed_or("window", 300)?;
    let no_reviser: bool = args.parsed_or("no-reviser", false)?;
    let extended: bool = args.parsed_or("extended", false)?;

    let events = crate::commands::read_clean(input)?;
    let slice = window(
        &events,
        Timestamp(from_week * WEEK_MS),
        Timestamp(to_week.saturating_mul(WEEK_MS)),
    );
    let config = FrameworkConfig {
        window: Duration::from_secs(window_secs),
        use_reviser: !no_reviser,
        ..FrameworkConfig::default()
    };
    let meta = if extended {
        MetaLearner::with_learners(config, dml_core::learners::extended_learners())
    } else {
        MetaLearner::new(config)
    };
    let outcome = meta.train(slice);
    save_repository_file(&outcome.repo, rules_out).map_err(|e| e.to_string())?;
    dml_obs::info!(
        "trained on {} events: {} rules kept of {} candidates ({} removed by reviser) → {rules_out}",
        slice.len(),
        outcome.repo.len(),
        outcome.candidates,
        outcome.removed_by_reviser
    );
    for kind in [
        RuleKind::Association,
        RuleKind::Statistical,
        RuleKind::Location,
        RuleKind::Distribution,
    ] {
        let n = outcome.repo.count_by_kind(kind);
        if n > 0 {
            dml_obs::info!("  {kind}: {n}");
        }
    }
    Ok(())
}
