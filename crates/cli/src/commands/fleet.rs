//! `dml fleet` — serve a simulated machine fleet through the sharded,
//! supervised pipeline (see `dml_core::fleet`).

use crate::args::Args;
use crate::CliError;
use bgl_sim::{FleetChaosPlan, FleetGenerator, FleetPreset};
use dml_core::fleet::{run_fleet, FaultSchedule, FleetConfig, FleetFault};
use dml_core::registry::{parse_pins, parse_stage_fractions, RolloutChaos, RolloutConfig};
use std::io::Write;
use std::path::Path;

/// `[--machines N] [--shards N] [--weeks N] [--seed N] [--supervise on|off]
/// [--chaos] [--checkpoint-dir DIR] [--rollout off|staged]
/// [--rollout-stages FRACS] [--pin-shard S=V,..] [--out-warnings FILE]
/// [--metrics-json FILE] [--metrics-history FILE] [--trace N] [--flight FILE]`
pub fn run(args: &Args) -> Result<(), CliError> {
    let machines: u32 = args.parsed_or("machines", 256)?;
    let shards: usize = args.parsed_or("shards", 8)?;
    let weeks: i64 = args.parsed_or("weeks", 12)?;
    let seed: u64 = args.parsed_or("seed", 42)?;
    let warmup = (weeks / 3).max(2);
    if warmup >= weeks {
        return Err(format!(
            "--weeks {weeks} leaves no serving range after the {warmup}-week warm-up; \
use --weeks {} or more",
            warmup + 1
        ));
    }
    let supervise = match args.optional("supervise").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--supervise: expected on|off, got `{other}`")),
    };
    let chaos = args.switch("chaos");
    let rollout = match args.optional("rollout").unwrap_or("off") {
        "staged" => true,
        "off" => false,
        other => return Err(format!("--rollout: expected off|staged, got `{other}`")),
    };
    let stage_fractions = match args.optional("rollout-stages") {
        Some(raw) => parse_stage_fractions(raw).map_err(|e| format!("--rollout-stages: {e}"))?,
        None => RolloutConfig::default().stage_fractions,
    };
    let pins = match args.optional("pin-shard") {
        Some(raw) => parse_pins(raw).map_err(|e| format!("--pin-shard: {e}"))?,
        None => Default::default(),
    };

    let preset = FleetPreset::datacenter(machines).with_weeks(weeks);
    let generator = FleetGenerator::new(preset, seed);
    let mut plan = if chaos {
        FleetChaosPlan::seeded(seed, warmup, weeks, shards, &preset.topology)
    } else {
        FleetChaosPlan::default()
    };
    if chaos && rollout {
        plan = plan.with_rollout_faults(warmup, weeks);
    }
    let events = generator.generate_with(&plan);

    let trace = match args.optional("trace") {
        Some(raw) => {
            let every: u64 = raw
                .parse()
                .map_err(|_| format!("--trace: cannot parse `{raw}`"))?;
            dml_obs::TraceConfig::every(every)
        }
        None => dml_obs::TraceConfig::disabled(),
    };
    let history = args
        .optional("metrics-history")
        .map(|_| dml_obs::shared_history(dml_obs::TimeSeriesStore::new()));
    let config = FleetConfig {
        shards,
        base_training_weeks: warmup,
        supervise,
        checkpoint_dir: args.optional("checkpoint-dir").map(Into::into),
        trace,
        history: history.clone(),
        rollout: rollout.then(|| RolloutConfig {
            stage_fractions,
            pins,
            chaos: RolloutChaos {
                poison_retrain_weeks: plan.poison_retrain_weeks.iter().copied().collect(),
                corrupt_registry_weeks: plan.corrupt_registry_weeks.iter().copied().collect(),
            },
            ..RolloutConfig::default()
        }),
        ..FleetConfig::default()
    };
    let mut schedule = FaultSchedule::new();
    for f in &plan.stalls {
        schedule.insert((f.week, f.shard % shards), FleetFault::Stall(config.heartbeat * 4));
    }
    for f in &plan.kills {
        schedule.insert((f.week, f.shard % shards), FleetFault::Kill);
    }
    for f in &plan.corruptions {
        schedule.insert((f.week, f.shard % shards), FleetFault::CorruptCheckpoint);
    }

    let mut flight = match args.optional("flight") {
        Some(path) => dml_obs::FlightRecorder::create(path, dml_obs::FlightConfig::default())
            .map_err(|e| format!("flight recorder {path}: {e}"))?,
        None => dml_obs::FlightRecorder::disabled(),
    };
    let report = run_fleet(&events, weeks, &config, &schedule, &mut flight);
    flight.flush();

    for s in &report.shards {
        dml_obs::info!(
            "shard {}: {} machines, {} events, precision {:.2} recall {:.2}, \
{} restart(s) ({} cold), {} fallback, {} lost fatal(s)",
            s.shard,
            s.machines,
            s.events_served,
            s.accuracy.precision(),
            s.accuracy.recall(),
            s.restarts,
            s.cold_restarts,
            s.fallback_events,
            s.lost_fatal_events,
        );
    }
    println!(
        "fleet: {} machines / {} shards, {} events in {:.2}s ({:.0} events/sec), \
precision {:.2} recall {:.2}, {} restarts, lost {} ({} fatal)",
        report.machines,
        report.shards.len(),
        report.events_served,
        report.elapsed.as_secs_f64(),
        report.events_per_sec(),
        report.overall.precision(),
        report.overall.recall(),
        report.restarts,
        report.lost_events,
        report.lost_fatal_events,
    );
    if report.rollout_enabled {
        println!(
            "rollout: {} fleet retrain(s) ({} poisoned), {} started / {} promoted / \
{} rolled back, {} registry corruption(s), known-good {:?}",
            report.fleet_retrains,
            report.poisoned_retrains,
            report.rollouts_started,
            report.rollouts_promoted,
            report.rollouts_rolled_back,
            report.registry_corruptions,
            report.rollout_known_good,
        );
    }

    if let Some(out) = args.optional("out-warnings") {
        let mut writer = crate::commands::create(out)?;
        let mut total = 0usize;
        for s in &report.shards {
            for w in &s.warnings {
                let line = serde_json::to_string(w).map_err(|e| format!("encode warning: {e}"))?;
                writeln!(writer, "{line}").map_err(|e| format!("write {out}: {e}"))?;
                total += 1;
            }
        }
        dml_obs::info!("{total} warnings → {out}");
    }

    let mut registry = dml_obs::Registry::new();
    registry.collect(&report);
    crate::commands::write_metrics_if_asked(args, &registry)?;
    if let (Some(path), Some(history)) = (args.optional("metrics-history"), &history) {
        let label = format!("dml fleet seed={seed} machines={machines} shards={shards}");
        dml_obs::with_history(history, |store| {
            store
                .write_file(Path::new(path), &label)
                .map_err(|e| format!("write {path}: {e}"))
        })?;
        dml_obs::info!("metrics history → {path}");
    }

    if chaos && supervise && report.lost_fatal_events > 0 {
        return Err(format!(
            "{} fatal event(s) lost under supervision",
            report.lost_fatal_events
        ));
    }
    Ok(())
}
