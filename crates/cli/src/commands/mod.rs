//! The subcommand implementations.

pub mod evaluate;
pub mod fleet;
pub mod generate;
pub mod predict;
pub mod preprocess_cmd;
pub mod stats;
pub mod train;

use crate::CliError;
use raslog::{CleanEvent, RasEvent};
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Reads a raw RAS log file.
pub fn read_raw(path: &str) -> Result<Vec<RasEvent>, CliError> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    raslog::io::read_log(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Reads a preprocessed (clean) log file.
pub fn read_clean(path: &str) -> Result<Vec<CleanEvent>, CliError> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    raslog::io::read_clean_log(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Opens a buffered writer, creating the file.
pub fn create(path: &str) -> Result<BufWriter<std::fs::File>, CliError> {
    let file =
        std::fs::File::create(Path::new(path)).map_err(|e| format!("cannot create {path}: {e}"))?;
    Ok(BufWriter::new(file))
}

/// If `--metrics-json FILE` was given, dumps `registry` as a versioned
/// snapshot (the same schema `repro --metrics-json` writes); if
/// `--metrics-openmetrics FILE`, as OpenMetrics/Prometheus exposition
/// text.
pub fn write_metrics_if_asked(
    args: &crate::args::Args,
    registry: &dml_obs::Registry,
) -> Result<(), CliError> {
    if let Some(path) = args.optional("metrics-json") {
        registry
            .snapshot()
            .write_file(path)
            .map_err(|e| format!("write {path}: {e}"))?;
        dml_obs::info!("metrics snapshot → {path}");
    }
    if let Some(path) = args.optional("metrics-openmetrics") {
        let text = dml_obs::render_openmetrics(&registry.snapshot());
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        dml_obs::info!("OpenMetrics exposition → {path}");
    }
    Ok(())
}
