//! A minimal `--flag value` argument parser (no external dependencies).

use crate::CliError;
use std::collections::{HashMap, HashSet};

/// Parsed `--flag value` pairs plus bare `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: HashSet<String>,
}

impl Args {
    /// Parses alternating `--flag value` tokens.
    pub fn parse(tokens: &[String]) -> Result<Args, CliError> {
        Self::parse_with_switches(tokens, &[])
    }

    /// Parses `--flag value` pairs, treating any flag named in `switches`
    /// as a bare boolean switch that takes no value.
    pub fn parse_with_switches(tokens: &[String], switches: &[&str]) -> Result<Args, CliError> {
        let mut values = HashMap::new();
        let mut seen = HashSet::new();
        let mut i = 0;
        while i < tokens.len() {
            let flag = tokens[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected `--flag`, got `{}`", tokens[i]))?;
            if switches.contains(&flag) {
                seen.insert(flag.to_string());
                i += 1;
                continue;
            }
            let value = tokens
                .get(i + 1)
                .ok_or_else(|| format!("flag `--{flag}` needs a value"))?;
            if values.insert(flag.to_string(), value.clone()).is_some() {
                return Err(format!("flag `--{flag}` given twice"));
            }
            i += 2;
        }
        Ok(Args {
            values,
            switches: seen,
        })
    }

    /// Whether a bare switch (declared via [`Args::parse_with_switches`])
    /// was present.
    pub fn switch(&self, flag: &str) -> bool {
        self.switches.contains(flag)
    }

    /// A required string flag.
    pub fn required(&self, flag: &str) -> Result<&str, CliError> {
        self.values
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag `--{flag}`"))
    }

    /// An optional string flag.
    pub fn optional(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("flag `--{flag}`: cannot parse `{v}`")),
        }
    }

    /// A required parsed flag.
    pub fn parsed<T: std::str::FromStr>(&self, flag: &str) -> Result<T, CliError> {
        let v = self.required(flag)?;
        v.parse::<T>()
            .map_err(|_| format!("flag `--{flag}`: cannot parse `{v}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_flag_pairs() {
        let a = Args::parse(&toks("--weeks 30 --out file.log")).unwrap();
        assert_eq!(a.required("out").unwrap(), "file.log");
        assert_eq!(a.parsed::<i64>("weeks").unwrap(), 30);
        assert_eq!(a.parsed_or("seed", 42u64).unwrap(), 42);
        assert!(a.optional("missing").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Args::parse(&toks("weeks 30")).is_err());
        assert!(Args::parse(&toks("--weeks")).is_err());
        assert!(Args::parse(&toks("--weeks 1 --weeks 2")).is_err());
        let a = Args::parse(&toks("--weeks thirty")).unwrap();
        assert!(a.parsed::<i64>("weeks").is_err());
        assert!(a.required("out").is_err());
    }

    #[test]
    fn switches_take_no_value() {
        let a = Args::parse_with_switches(&toks("--quiet --weeks 30"), &["quiet"]).unwrap();
        assert!(a.switch("quiet"));
        assert_eq!(a.parsed::<i64>("weeks").unwrap(), 30);
        // An undeclared bare flag still demands a value.
        assert!(Args::parse_with_switches(&toks("--weeks 30 --quiet"), &[]).is_err());
        // A trailing declared switch parses fine.
        let b = Args::parse_with_switches(&toks("--weeks 30 --quiet"), &["quiet"]).unwrap();
        assert!(b.switch("quiet"));
        assert!(!b.switch("verbose"));
    }
}
