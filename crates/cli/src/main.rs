//! The `dml` binary. See the crate docs of `dml_cli` for the commands.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = dml_cli::run(&argv) {
        dml_obs::error!("{message}");
        std::process::exit(1);
    }
}
