//! Property tests for the synthetic log generator.

use bgl_sim::{standard_catalog, Generator, SystemPreset};
use proptest::prelude::*;
use raslog::{Severity, WEEK_MS};

fn small_preset(weeks: i64) -> SystemPreset {
    SystemPreset::sdsc()
        .with_weeks(weeks)
        .with_volume_scale(0.05)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn week_streams_are_sorted_typed_and_bounded(seed in 0u64..1000, week in 0i64..4) {
        let generator = Generator::new(small_preset(4), seed);
        let (events, truth) = generator.week_events(week);
        prop_assert!(!events.is_empty());
        // Sorted by time, inside the week, ids strictly increasing.
        for w in events.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
            prop_assert!(w[0].record_id < w[1].record_id);
        }
        let catalog = generator.catalog();
        for e in &events {
            prop_assert_eq!(e.time.week_index(), week);
            // Every record maps to a catalog type with matching logged
            // severity.
            let id = catalog.lookup(e.facility, &e.entry_data);
            prop_assert!(id.is_some(), "unknown entry `{}`", e.entry_data);
            prop_assert_eq!(catalog.def(id.unwrap()).logged_severity, e.severity);
        }
        // Truth bookkeeping.
        prop_assert!(truth.cued_fatals <= truth.fatals.len());
        for f in &truth.fatals {
            prop_assert!(catalog.is_fatal(f.type_id));
            prop_assert_eq!(f.time.week_index(), week);
        }
    }

    #[test]
    fn generation_is_deterministic(seed in 0u64..1000) {
        let a = Generator::new(small_preset(2), seed);
        let b = Generator::new(small_preset(2), seed);
        prop_assert_eq!(a.week_events(1).0, b.week_events(1).0);
    }

    #[test]
    fn locations_fit_the_topology(seed in 0u64..200) {
        let preset = small_preset(2);
        let racks = preset.topology.racks;
        let generator = Generator::new(preset, seed);
        let (events, _) = generator.week_events(0);
        for e in &events {
            if let Some(rack) = e.location.rack() {
                prop_assert!(rack < racks, "rack {rack} out of range at {}", e.location);
            }
        }
    }

    #[test]
    fn volume_scale_reduces_raw_count_not_fatals(seed in 0u64..200) {
        let full = Generator::new(SystemPreset::sdsc().with_weeks(1), seed);
        let scaled =
            Generator::new(SystemPreset::sdsc().with_weeks(1).with_volume_scale(0.05), seed);
        let (raw_full, truth_full) = full.week_events(0);
        let (raw_scaled, truth_scaled) = scaled.week_events(0);
        prop_assert!(raw_scaled.len() < raw_full.len());
        // The signal (intended fatal occurrences) is identical.
        prop_assert_eq!(truth_full.fatals, truth_scaled.fatals);
    }
}

#[test]
fn logged_fatal_population_includes_fakes() {
    // Across a few weeks, some records logged FATAL must be catalog-classed
    // non-fatal (the categorizer's correction target).
    let generator = Generator::new(small_preset(4), 9);
    let catalog = standard_catalog();
    let mut fake_seen = false;
    let mut true_seen = false;
    for w in 0..4 {
        let (events, _) = generator.week_events(w);
        for e in &events {
            if e.severity.is_fatal_as_logged() {
                let id = catalog.lookup(e.facility, &e.entry_data).unwrap();
                if catalog.is_fatal(id) {
                    true_seen = true;
                } else {
                    fake_seen = true;
                }
            }
        }
    }
    assert!(true_seen, "no truly fatal records logged");
    assert!(fake_seen, "no fake-fatal records logged");
}

#[test]
fn severity_mix_is_dominated_by_informational_records() {
    // RAS logs are mostly chatter: at full duplication, INFO/WARNING/…
    // records outnumber FATAL/FAILURE ones.
    let generator = Generator::new(SystemPreset::sdsc().with_weeks(2), 11);
    let mut low = 0usize;
    let mut high = 0usize;
    for w in 0..2 {
        let (events, _) = generator.week_events(w);
        for e in &events {
            if e.severity <= Severity::Error {
                low += 1;
            } else {
                high += 1;
            }
        }
    }
    assert!(low > high, "low {low} vs high {high}");
    let _ = WEEK_MS;
}
