//! Background non-fatal event streams.
//!
//! Most of a RAS log is informational: warnings, configuration chatter,
//! environmental readings. The noise model emits per-facility Poisson
//! streams with Zipf-weighted type choice, plus ANL-style *machine-check
//! storms* — the paper notes over 1.15 million machine-check messages in a
//! single week at ANL, produced by aggressive diagnostics.

use rand::Rng;
use rand_distr::{Distribution, Poisson};
use raslog::{EventCatalog, EventTypeId, Facility, RecordSource, Timestamp, DAY_MS, WEEK_MS};
use serde::{Deserialize, Serialize};

/// Configuration of the background noise streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Expected *unique* non-fatal events per week for each facility
    /// (indexed by [`Facility::index`]); duplication happens later in
    /// reporting.
    pub weekly_rates: [f64; 10],
    /// Probability that a given week contains a machine-check storm.
    pub storm_weekly_prob: f64,
    /// Expected unique events in one storm (heavily duplicated later).
    pub storm_mean_events: f64,
}

impl NoiseConfig {
    /// Rates shaped like the ANL log: KERNEL-dominated with a busy MONITOR
    /// stream and frequent diagnostic storms.
    pub fn anl_like() -> Self {
        let mut weekly_rates = [0.0; 10];
        weekly_rates[Facility::App.index()] = 14.0;
        weekly_rates[Facility::BglMaster.index()] = 1.0;
        weekly_rates[Facility::Cmcs.index()] = 2.5;
        weekly_rates[Facility::Discovery.index()] = 13.0;
        weekly_rates[Facility::Hardware.index()] = 5.0;
        weekly_rates[Facility::Kernel.index()] = 220.0;
        weekly_rates[Facility::Mmcs.index()] = 4.0;
        weekly_rates[Facility::Monitor.index()] = 140.0;
        weekly_rates[Facility::ServNet.index()] = 0.01;
        NoiseConfig {
            weekly_rates,
            storm_weekly_prob: 0.3,
            storm_mean_events: 1500.0,
        }
    }

    /// Rates shaped like the SDSC log: quieter overall, no MONITOR stream
    /// (the SDSC log has zero MONITOR records) and rare storms.
    pub fn sdsc_like() -> Self {
        let mut weekly_rates = [0.0; 10];
        weekly_rates[Facility::App.index()] = 4.5;
        weekly_rates[Facility::BglMaster.index()] = 0.8;
        weekly_rates[Facility::Cmcs.index()] = 3.0;
        weekly_rates[Facility::Discovery.index()] = 24.0;
        weekly_rates[Facility::Hardware.index()] = 2.5;
        weekly_rates[Facility::Kernel.index()] = 27.0;
        weekly_rates[Facility::Mmcs.index()] = 4.0;
        weekly_rates[Facility::Monitor.index()] = 0.0;
        weekly_rates[Facility::ServNet.index()] = 0.03;
        NoiseConfig {
            weekly_rates,
            storm_weekly_prob: 0.05,
            storm_mean_events: 300.0,
        }
    }
}

/// One background non-fatal emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseEvent {
    /// When it is logged.
    pub time: Timestamp,
    /// Which non-fatal type.
    pub type_id: EventTypeId,
    /// Recording mechanism (`MachineCheck` for storm events).
    pub source: RecordSource,
}

/// Generates the noise stream for week `w` (times within that week),
/// sorted by time.
pub fn generate_noise<R: Rng>(
    config: &NoiseConfig,
    catalog: &EventCatalog,
    week: i64,
    rng: &mut R,
) -> Vec<NoiseEvent> {
    let week_start = week * WEEK_MS;
    let mut out = Vec::new();

    // Per-facility non-fatal type pools with Zipf weights.
    for facility in Facility::ALL {
        let rate = config.weekly_rates[facility.index()];
        if rate <= 0.0 {
            continue;
        }
        let pool: Vec<EventTypeId> = catalog
            .iter()
            .filter(|d| d.facility == facility && !d.fatal)
            .map(|d| d.id)
            .collect();
        if pool.is_empty() {
            continue;
        }
        let n = Poisson::new(rate).expect("positive rate").sample(rng) as usize;
        // Steep Zipf: routine chatter concentrates on each facility's few
        // stock messages; the tail types are genuinely unusual.
        let total_weight: f64 = (1..=pool.len()).map(|i| 1.0 / (i as f64).powf(1.5)).sum();
        for _ in 0..n {
            let mut x = rng.gen_range(0.0..total_weight);
            let mut chosen = pool[pool.len() - 1];
            for (i, &id) in pool.iter().enumerate() {
                let w = 1.0 / ((i + 1) as f64).powf(1.5);
                if x < w {
                    chosen = id;
                    break;
                }
                x -= w;
            }
            out.push(NoiseEvent {
                time: Timestamp(week_start + rng.gen_range(0..WEEK_MS)),
                type_id: chosen,
                source: RecordSource::Ras,
            });
        }
    }

    // Machine-check storm: a burst of KERNEL info/correctable messages
    // concentrated in one day of the week.
    if rng.gen_bool(config.storm_weekly_prob.clamp(0.0, 1.0)) {
        let kernel_pool: Vec<EventTypeId> = catalog
            .iter()
            .filter(|d| d.facility == Facility::Kernel && !d.fatal)
            .map(|d| d.id)
            .collect();
        if !kernel_pool.is_empty() {
            let day = rng.gen_range(0..7i64);
            let day_start = week_start + day * DAY_MS;
            let n = Poisson::new(config.storm_mean_events.max(1.0))
                .expect("positive storm size")
                .sample(rng) as usize;
            // A storm is a specific message family hammering the log, not
            // a uniform spray over every kernel type: concentrate on the
            // few heaviest types (steep Zipf).
            let total_weight: f64 = (1..=kernel_pool.len())
                .map(|i| 1.0 / (i as f64).powi(2))
                .sum();
            for _ in 0..n {
                let mut x = rng.gen_range(0.0..total_weight);
                let mut id = kernel_pool[0];
                for (i, &cand) in kernel_pool.iter().enumerate() {
                    let w = 1.0 / ((i + 1) as f64).powi(2);
                    if x < w {
                        id = cand;
                        break;
                    }
                    x -= w;
                }
                out.push(NoiseEvent {
                    time: Timestamp(day_start + rng.gen_range(0..DAY_MS)),
                    type_id: id,
                    source: RecordSource::MachineCheck,
                });
            }
        }
    }

    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_is_nonfatal_sorted_and_in_week() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(1);
        let events = generate_noise(&NoiseConfig::anl_like(), &catalog, 3, &mut rng);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in &events {
            assert!(!catalog.is_fatal(e.type_id));
            assert_eq!(e.time.week_index(), 3);
        }
    }

    #[test]
    fn sdsc_has_no_monitor_noise() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(2);
        for week in 0..10 {
            for e in generate_noise(&NoiseConfig::sdsc_like(), &catalog, week, &mut rng) {
                assert_ne!(catalog.def(e.type_id).facility, Facility::Monitor);
            }
        }
    }

    #[test]
    fn storms_are_machine_check_kernel_bursts() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(3);
        let config = NoiseConfig {
            storm_weekly_prob: 1.0,
            ..NoiseConfig::anl_like()
        };
        let events = generate_noise(&config, &catalog, 0, &mut rng);
        let storm: Vec<_> = events
            .iter()
            .filter(|e| e.source == RecordSource::MachineCheck)
            .collect();
        assert!(storm.len() > 500, "storm too small: {}", storm.len());
        for e in &storm {
            assert_eq!(catalog.def(e.type_id).facility, Facility::Kernel);
        }
        // Storm is concentrated in one day.
        let days: std::collections::HashSet<i64> =
            storm.iter().map(|e| e.time.day_index()).collect();
        assert_eq!(days.len(), 1);
    }

    #[test]
    fn rates_scale_expected_counts() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(4);
        let config = NoiseConfig {
            storm_weekly_prob: 0.0,
            ..NoiseConfig::anl_like()
        };
        let mut kernel_total = 0usize;
        let weeks = 20;
        for week in 0..weeks {
            kernel_total += generate_noise(&config, &catalog, week, &mut rng)
                .iter()
                .filter(|e| catalog.def(e.type_id).facility == Facility::Kernel)
                .count();
        }
        let expected = config.weekly_rates[Facility::Kernel.index()] * weeks as f64;
        let got = kernel_total as f64;
        assert!(
            (got - expected).abs() / expected < 0.15,
            "{got} vs {expected}"
        );
    }
}
