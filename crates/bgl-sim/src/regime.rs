//! The weekly regime schedule: slow drift plus optional reconfiguration.
//!
//! System behaviour changes during operation — "hardware and software
//! upgrades are common at supercomputing centers, and system workloads
//! tend to vary" — which is why static training decays (Fig. 7/9) and why
//! the SDSC log shows a sharp accuracy dip and heavy rule churn around its
//! week-62 reconfiguration (Figs. 10 and 12). The schedule materializes one
//! [`Regime`] per week: each week the previous regime drifts a little, and
//! at the configured reconfiguration week it is largely rewritten.

use crate::cascade::Regime;
use rand::rngs::StdRng;
use rand::SeedableRng;
use raslog::EventCatalog;
use serde::{Deserialize, Serialize};

/// Parameters of the regime evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegimeConfig {
    /// Number of weeks to materialize.
    pub weeks: i64,
    /// Per-rule replacement probability applied every week.
    pub weekly_drift: f64,
    /// Week at which a major reconfiguration occurs, if any.
    pub reconfig_week: Option<i64>,
    /// Drift applied at the reconfiguration week (e.g. 0.8).
    pub reconfig_drift: f64,
    /// Target fraction of fatal occurrences preceded by planted cues.
    pub precursor_coverage: f64,
}

impl Default for RegimeConfig {
    fn default() -> Self {
        RegimeConfig {
            weeks: 52,
            weekly_drift: 0.02,
            reconfig_week: None,
            reconfig_drift: 0.8,
            precursor_coverage: 0.35,
        }
    }
}

/// One regime per week, materialized deterministically from a seed.
#[derive(Debug, Clone)]
pub struct RegimeSchedule {
    weekly: Vec<Regime>,
}

impl RegimeSchedule {
    /// Builds the schedule for `config.weeks` weeks.
    pub fn generate(catalog: &EventCatalog, config: &RegimeConfig, seed: u64) -> Self {
        assert!(config.weeks > 0, "need at least one week");
        let mut rng = StdRng::seed_from_u64(seed ^ REGIME_SEED_TAG);
        let mut weekly = Vec::with_capacity(config.weeks as usize);
        let mut current = Regime::random(catalog, config.precursor_coverage, &mut rng);
        for w in 0..config.weeks {
            if Some(w) == config.reconfig_week {
                current = current.drifted(config.reconfig_drift, catalog, &mut rng);
            } else if w > 0 {
                current = current.drifted(config.weekly_drift, catalog, &mut rng);
            }
            weekly.push(current.clone());
        }
        RegimeSchedule { weekly }
    }

    /// The regime in force during week `w` (clamped to the schedule span).
    pub fn for_week(&self, w: i64) -> &Regime {
        let idx = w.clamp(0, self.weekly.len() as i64 - 1) as usize;
        &self.weekly[idx]
    }

    /// Number of materialized weeks.
    pub fn weeks(&self) -> i64 {
        self.weekly.len() as i64
    }
}

/// Mixed into the seed so schedule randomness is decoupled from the other
/// generator streams that share the same user-facing seed.
const REGIME_SEED_TAG: u64 = 0x9e37_79b9_7f4a_7c15;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;

    fn cfg(weeks: i64, reconfig: Option<i64>) -> RegimeConfig {
        RegimeConfig {
            weeks,
            reconfig_week: reconfig,
            ..RegimeConfig::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let catalog = standard_catalog();
        let a = RegimeSchedule::generate(&catalog, &cfg(20, None), 7);
        let b = RegimeSchedule::generate(&catalog, &cfg(20, None), 7);
        for w in 0..20 {
            assert_eq!(a.for_week(w).rules, b.for_week(w).rules, "week {w}");
        }
        let c = RegimeSchedule::generate(&catalog, &cfg(20, None), 8);
        assert_ne!(a.for_week(0).rules, c.for_week(0).rules);
    }

    #[test]
    fn adjacent_weeks_are_similar_without_reconfig() {
        let catalog = standard_catalog();
        let sched = RegimeSchedule::generate(&catalog, &cfg(30, None), 11);
        for w in 1..30 {
            let prev = sched.for_week(w - 1);
            let cur = sched.for_week(w);
            let changed = cur
                .rules
                .iter()
                .filter(|r| !prev.rules.iter().any(|o| &o == r))
                .count();
            assert!(changed <= 4, "week {w}: {changed} rules changed");
        }
    }

    #[test]
    fn reconfiguration_week_rewrites_rules() {
        let catalog = standard_catalog();
        let sched = RegimeSchedule::generate(&catalog, &cfg(30, Some(15)), 13);
        let before = sched.for_week(14);
        let after = sched.for_week(15);
        let unchanged = after
            .rules
            .iter()
            .filter(|r| before.rules.iter().any(|o| &o == r))
            .count();
        assert!(
            unchanged * 2 <= before.rules.len(),
            "{unchanged}/{} rules survived the reconfiguration",
            before.rules.len()
        );
    }

    #[test]
    fn for_week_clamps() {
        let catalog = standard_catalog();
        let sched = RegimeSchedule::generate(&catalog, &cfg(5, None), 3);
        assert_eq!(sched.weeks(), 5);
        assert_eq!(sched.for_week(-3).rules, sched.for_week(0).rules);
        assert_eq!(sched.for_week(99).rules, sched.for_week(4).rules);
    }
}
