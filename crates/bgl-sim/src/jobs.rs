//! A lightweight job-scheduler model.
//!
//! Blue Gene jobs run on partitions of node cards; any event detected on a
//! chip is attributed to the job whose partition contains it. The model
//! keeps a rolling set of active jobs with Poisson-ish arrivals and
//! log-normal durations, enough for the `Job ID` attribute and for the
//! filter's "same Job ID" compression predicates to be meaningful.

use crate::topology::Topology;
use rand::Rng;
use rand_distr::{Distribution, LogNormal as LogNormalDist};
use raslog::{Duration, JobId, Location, Timestamp};

/// A scheduled job occupying a set of node cards for a time interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Unique job id.
    pub id: JobId,
    /// Start time (inclusive).
    pub start: Timestamp,
    /// End time (exclusive).
    pub end: Timestamp,
    /// The node cards the job occupies.
    pub partition: Vec<Location>,
}

impl Job {
    /// `true` when the job is running at `t` and its partition contains
    /// `loc`.
    pub fn covers(&self, t: Timestamp, loc: &Location) -> bool {
        t >= self.start && t < self.end && self.partition.iter().any(|nc| nc.contains(loc))
    }
}

/// Generates the job schedule for a time span.
#[derive(Debug, Clone)]
pub struct JobModel {
    topology: Topology,
    /// Mean gap between job starts.
    pub mean_interarrival: Duration,
    /// Median job duration (log-normal).
    pub median_duration: Duration,
    /// Node cards per job partition (min, max).
    pub partition_cards: (usize, usize),
}

impl JobModel {
    /// A schedule generator with workload parameters typical of capability
    /// systems (jobs of minutes to hours on 1–8 node cards).
    pub fn new(topology: Topology) -> Self {
        JobModel {
            topology,
            mean_interarrival: Duration::from_mins(20),
            median_duration: Duration::from_hours(2),
            partition_cards: (1, 8),
        }
    }

    /// Generates all jobs whose start falls in `[from, to)`, with ids
    /// beginning at `first_id`.
    pub fn schedule<R: Rng>(
        &self,
        from: Timestamp,
        to: Timestamp,
        first_id: u32,
        rng: &mut R,
    ) -> Vec<Job> {
        let dur_dist = LogNormalDist::new((self.median_duration.millis() as f64).ln(), 0.9)
            .expect("valid log-normal");
        let mut jobs = Vec::new();
        let mut t = from;
        let mut id = first_id;
        while t < to {
            // Exponential gap with the configured mean.
            let gap_ms = (-rng.gen_range(1e-12f64..1.0).ln()
                * self.mean_interarrival.millis() as f64) as i64;
            t = t + Duration(gap_ms.max(1));
            if t >= to {
                break;
            }
            let dur_ms = dur_dist.sample(rng).clamp(60_000.0, 7.0 * 24.0 * 3.6e6) as i64;
            let cards = rng.gen_range(self.partition_cards.0..=self.partition_cards.1);
            let mut partition = Vec::with_capacity(cards);
            for _ in 0..cards {
                partition.push(self.topology.random_node_card(rng));
            }
            partition.sort();
            partition.dedup();
            jobs.push(Job {
                id: JobId(id),
                start: t,
                end: t + Duration(dur_ms),
                partition,
            });
            id += 1;
        }
        jobs
    }
}

/// Finds the job covering `loc` at `t`, preferring the most recently
/// started one (jobs are sorted by start time).
pub fn job_at<'a>(jobs: &'a [Job], t: Timestamp, loc: &Location) -> Option<&'a Job> {
    jobs.iter().rev().find(|j| j.covers(t, loc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> JobModel {
        JobModel::new(Topology::new(1, 16))
    }

    #[test]
    fn schedule_is_ordered_and_bounded() {
        let mut rng = StdRng::seed_from_u64(9);
        let to = Timestamp::from_secs(7 * 24 * 3600);
        let jobs = model().schedule(Timestamp::ZERO, to, 100, &mut rng);
        assert!(!jobs.is_empty());
        for w in jobs.windows(2) {
            assert!(w[0].start <= w[1].start);
            assert_eq!(w[1].id.0, w[0].id.0 + 1);
        }
        for j in &jobs {
            assert!(j.start >= Timestamp::ZERO && j.start < to);
            assert!(j.end > j.start);
            assert!(!j.partition.is_empty());
        }
    }

    #[test]
    fn covers_respects_time_and_space() {
        let card = Location::NodeCard {
            rack: 0,
            midplane: 0,
            node_card: 3,
        };
        let job = Job {
            id: JobId(1),
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(200),
            partition: vec![card],
        };
        let chip_on = Location::chip(0, 0, 3, 5, 1);
        let chip_off = Location::chip(0, 0, 4, 5, 1);
        assert!(job.covers(Timestamp::from_secs(150), &chip_on));
        assert!(!job.covers(Timestamp::from_secs(150), &chip_off));
        assert!(!job.covers(Timestamp::from_secs(50), &chip_on));
        assert!(!job.covers(Timestamp::from_secs(200), &chip_on)); // end exclusive
    }

    #[test]
    fn job_at_prefers_latest() {
        let card = Location::NodeCard {
            rack: 0,
            midplane: 0,
            node_card: 3,
        };
        let mk = |id: u32, s: i64, e: i64| Job {
            id: JobId(id),
            start: Timestamp::from_secs(s),
            end: Timestamp::from_secs(e),
            partition: vec![card],
        };
        let jobs = vec![mk(1, 0, 1000), mk(2, 500, 800)];
        let chip = Location::chip(0, 0, 3, 0, 0);
        assert_eq!(
            job_at(&jobs, Timestamp::from_secs(600), &chip).unwrap().id,
            JobId(2)
        );
        assert_eq!(
            job_at(&jobs, Timestamp::from_secs(900), &chip).unwrap().id,
            JobId(1)
        );
        assert!(job_at(&jobs, Timestamp::from_secs(2000), &chip).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let to = Timestamp::from_secs(24 * 3600);
        let a = model().schedule(Timestamp::ZERO, to, 0, &mut StdRng::seed_from_u64(42));
        let b = model().schedule(Timestamp::ZERO, to, 0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
