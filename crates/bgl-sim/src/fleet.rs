//! Fleet-scale trace generation: correlated multi-machine event streams
//! plus a seeded chaos plan for the sharded serving layer.
//!
//! The single-system [`crate::Generator`] models one Blue Gene-class
//! installation in depth (raw log lines, duplication, reporting noise).
//! The fleet generator instead models *many* machines shallowly: each
//! machine emits cleaned events directly, with three planted structures
//! the prediction pipeline can exploit or be stressed by:
//!
//! 1. **Per-machine precursor chains** — a nonfatal precursor type is
//!    followed by a class-specific fatal inside the prediction window,
//!    so the meta-learner has association/statistical rules to find.
//! 2. **Isolated fatals** — fatals with no precursor, bounding recall
//!    away from 1 and keeping accuracy comparisons honest.
//! 3. **Failure-domain outages** — every machine on a PDU / switch /
//!    cooling loop fails near-simultaneously, preceded by a domain cue
//!    event. A low background rate of the same cue→fatal pattern exists
//!    fleet-wide, so outage fatals are predictable from trained rules.
//!
//! Weeks are generated independently and deterministically from
//! `(seed, week)`, mirroring [`crate::Generator::week_events`].

use crate::topology::{FailureDomain, FleetTopology};
use rand::prelude::*;
use rand_distr::{Distribution, Poisson};
use raslog::{CleanEvent, EventTypeId, MachineEvent, Timestamp, WEEK_MS};
use serde::{Deserialize, Serialize};

const WEEK_SECS: i64 = WEEK_MS / 1000;

/// Event-type id layout of the fleet trace (documented so tests and
/// experiments can assert against stable ids).
pub mod types {
    use raslog::EventTypeId;

    /// Precursor type for fatal class `k` (`k < FATAL_CLASSES`).
    pub fn precursor(k: u16) -> EventTypeId {
        EventTypeId(1 + k)
    }

    /// Fatal type for class `k`.
    pub fn fatal(k: u16) -> EventTypeId {
        EventTypeId(100 + k)
    }

    /// Routine chatter types, `0 <= i < 20`.
    pub fn noise(i: u16) -> EventTypeId {
        EventTypeId(10 + i)
    }

    /// Domain-outage cue type (0 = PDU, 1 = switch, 2 = cooling).
    pub fn outage_cue(kind: u16) -> EventTypeId {
        EventTypeId(50 + kind)
    }

    /// Domain-outage fatal type (same kind indexing as the cue).
    pub fn outage_fatal(kind: u16) -> EventTypeId {
        EventTypeId(110 + kind)
    }

    /// Number of per-machine fatal classes.
    pub const FATAL_CLASSES: u16 = 3;
}

/// Tunables of the fleet trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetPreset {
    /// Machine-to-domain wiring (and the machine count).
    pub topology: FleetTopology,
    /// Weeks of trace to generate.
    pub weeks: i64,
    /// Mean precursor→fatal chains per machine-week.
    pub chains_per_machine_week: f64,
    /// Mean routine (noise) events per machine-week.
    pub noise_per_machine_week: f64,
    /// Probability a machine emits an unheralded fatal in a week.
    pub isolated_fatal_prob: f64,
    /// Mean *background* outage-style cue→fatal pairs per machine-week
    /// (teaches the cue→fatal rule without an actual outage).
    pub outage_background_per_machine_week: f64,
}

impl FleetPreset {
    /// A simulated datacenter of `machines` machines, 12 weeks.
    pub fn datacenter(machines: u32) -> Self {
        FleetPreset {
            topology: FleetTopology::new(machines),
            weeks: 12,
            chains_per_machine_week: 2.0,
            noise_per_machine_week: 4.0,
            isolated_fatal_prob: 0.05,
            outage_background_per_machine_week: 0.3,
        }
    }

    /// Same preset with a different trace length.
    pub fn with_weeks(mut self, weeks: i64) -> Self {
        assert!(weeks > 0, "need at least one week");
        self.weeks = weeks;
        self
    }
}

/// One scheduled shard-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFault {
    /// Serving week (block) the fault fires in.
    pub week: i64,
    /// Target shard index.
    pub shard: usize,
}

/// One scheduled failure-domain outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainOutage {
    /// Week the outage happens in.
    pub week: i64,
    /// The shared dependency that fails.
    pub domain: FailureDomain,
    /// Outage onset, seconds into the week.
    pub onset_secs: i64,
}

/// A seeded schedule of everything the fleet harness injects: trace-level
/// domain outages (consumed by the generator) and serving-level shard
/// faults (consumed by the shard supervisor's fault hook).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetChaosPlan {
    /// Shards killed mid-block (worker panic).
    pub kills: Vec<ShardFault>,
    /// Shards stalled past the heartbeat deadline.
    pub stalls: Vec<ShardFault>,
    /// Shards whose latest checkpoint is corrupted before restart.
    pub corruptions: Vec<ShardFault>,
    /// Failure-domain outages woven into the trace itself.
    pub outages: Vec<DomainOutage>,
    /// Rollout-targeted: fleet retrains on these weeks train on a
    /// poisoned window (every fatal stripped), so any staged candidate
    /// must be caught at canary. Empty unless
    /// [`FleetChaosPlan::with_rollout_faults`] was applied.
    #[serde(default)]
    pub poison_retrain_weeks: Vec<i64>,
    /// Rollout-targeted: the registry's on-disk checkpoint is scribbled
    /// on these weeks (the weekly self-check must ride through it).
    #[serde(default)]
    pub corrupt_registry_weeks: Vec<i64>,
}

impl FleetChaosPlan {
    /// Derives a deterministic plan for a run serving weeks
    /// `[warmup_weeks, weeks)` over `shards` shards of `topology`.
    /// Faults land only in serving weeks strictly after the first, so
    /// every shard has at least one checkpoint before its first fault.
    pub fn seeded(
        seed: u64,
        warmup_weeks: i64,
        weeks: i64,
        shards: usize,
        topology: &FleetTopology,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let first = warmup_weeks + 1;
        if first >= weeks {
            return FleetChaosPlan::default();
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00f1_ee7c_4a05_u64);
        let serving = weeks - first;
        let mut pick_faults = |n: i64| -> Vec<ShardFault> {
            (0..n)
                .map(|_| ShardFault {
                    week: rng.gen_range(first..weeks),
                    shard: rng.gen_range(0..shards),
                })
                .collect()
        };
        let kills = pick_faults((serving / 3).max(1));
        let stalls = pick_faults((serving / 6).max(1));
        let corruptions = pick_faults(1);
        let domains = topology.domains();
        let outages = (0..(serving / 4).max(1))
            .map(|_| DomainOutage {
                week: rng.gen_range(first..weeks),
                domain: domains[rng.gen_range(0..domains.len())],
                onset_secs: rng.gen_range(WEEK_SECS / 4..3 * WEEK_SECS / 4),
            })
            .collect();
        FleetChaosPlan {
            kills,
            stalls,
            corruptions,
            outages,
            ..FleetChaosPlan::default()
        }
    }

    /// Total scheduled shard-level faults.
    pub fn shard_fault_count(&self) -> usize {
        self.kills.len() + self.stalls.len() + self.corruptions.len()
    }

    /// Adds rollout-targeted faults for a run serving weeks
    /// `[warmup_weeks, weeks)`. Strictly append-only — the seeded
    /// kill/stall/corruption/outage draws are untouched, so a plan with
    /// rollout faults injects the exact same shard-level chaos as one
    /// without:
    ///
    /// * **every** serving week's retrain window is poisoned, so every
    ///   candidate the registry stages is garbage the canary stage must
    ///   catch — the fleet must finish the run on the known-good base;
    /// * one extra kill lands on shard 0 (the canary of an unpinned
    ///   plan) mid-run, stressing rollback while the victim is down;
    /// * one registry-checkpoint corruption mid-run exercises the
    ///   weekly self-check.
    pub fn with_rollout_faults(mut self, warmup_weeks: i64, weeks: i64) -> Self {
        let first = warmup_weeks + 1;
        if first >= weeks {
            return self;
        }
        self.poison_retrain_weeks = (first..weeks).collect();
        let mid = (first + weeks) / 2;
        self.corrupt_registry_weeks = vec![mid];
        self.kills.push(ShardFault {
            week: mid,
            shard: 0,
        });
        self
    }
}

/// Deterministic multi-machine trace generator.
#[derive(Debug, Clone)]
pub struct FleetGenerator {
    preset: FleetPreset,
    seed: u64,
}

impl FleetGenerator {
    /// A generator for `preset` seeded with `seed`.
    pub fn new(preset: FleetPreset, seed: u64) -> Self {
        FleetGenerator { preset, seed }
    }

    /// The preset this generator runs.
    pub fn preset(&self) -> &FleetPreset {
        &self.preset
    }

    /// One week of the clean (outage-free) fleet trace, sorted by time.
    /// Deterministic in `(seed, week)` alone.
    pub fn week_events(&self, week: i64) -> Vec<MachineEvent> {
        self.week_events_with(week, &FleetChaosPlan::default())
    }

    /// One week of the trace with `plan`'s domain outages woven in.
    /// Shard-level faults in `plan` do not affect the trace.
    pub fn week_events_with(&self, week: i64, plan: &FleetChaosPlan) -> Vec<MachineEvent> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (week as u64).wrapping_mul(0xd129_2e47_91fa_c0de));
        let base = week * WEEK_SECS;
        let last = (week + 1) * WEEK_SECS - 1;
        let p = &self.preset;
        let mut out = Vec::new();
        let mut push = |machine: u32, secs: i64, ty: EventTypeId, fatal: bool| {
            let t = secs.clamp(base, last);
            out.push(MachineEvent::new(
                machine,
                CleanEvent::new(Timestamp::from_secs(t), ty, fatal),
            ));
        };

        for machine in 0..p.topology.machines {
            // Routine chatter.
            let noise = poisson(&mut rng, p.noise_per_machine_week);
            for _ in 0..noise {
                let t = base + rng.gen_range(0..WEEK_SECS);
                push(machine, t, types::noise(rng.gen_range(0..20)), false);
            }
            // Precursor chains: precursor, then the class fatal 150–250 s
            // later — inside the default 300 s prediction window.
            let chains = poisson(&mut rng, p.chains_per_machine_week);
            for _ in 0..chains {
                let k = rng.gen_range(0..types::FATAL_CLASSES);
                let t = base + rng.gen_range(0..WEEK_SECS - 300);
                push(machine, t, types::precursor(k), false);
                push(machine, t + rng.gen_range(150..250), types::fatal(k), true);
            }
            // Unheralded fatals.
            if rng.gen_bool(p.isolated_fatal_prob) {
                let k = rng.gen_range(0..types::FATAL_CLASSES);
                let t = base + rng.gen_range(0..WEEK_SECS);
                push(machine, t, types::fatal(k), true);
            }
            // Background cue→fatal pairs of the outage classes.
            let bg = poisson(&mut rng, p.outage_background_per_machine_week);
            for _ in 0..bg {
                let kind = rng.gen_range(0..3);
                let t = base + rng.gen_range(0..WEEK_SECS - 300);
                push(machine, t, types::outage_cue(kind), false);
                push(
                    machine,
                    t + rng.gen_range(120..260),
                    types::outage_fatal(kind),
                    true,
                );
            }
        }

        // Scheduled domain outages: one cue per member machine ~2 minutes
        // before onset, then the whole domain fails within ~40 s.
        for outage in plan.outages.iter().filter(|o| o.week == week) {
            let kind = match outage.domain {
                FailureDomain::Pdu(_) => 0,
                FailureDomain::Switch(_) => 1,
                FailureDomain::Cooling(_) => 2,
            };
            let onset = base + outage.onset_secs;
            for machine in p.topology.machines_in(outage.domain) {
                let cue_jitter = rng.gen_range(0..20);
                let fail_jitter = rng.gen_range(0..40);
                push(machine, onset - 130 + cue_jitter, types::outage_cue(kind), false);
                push(machine, onset + fail_jitter, types::outage_fatal(kind), true);
            }
        }

        out.sort_by_key(|me| (me.event.time, me.machine, me.event.type_id));
        out
    }

    /// The whole clean trace.
    pub fn generate(&self) -> Vec<MachineEvent> {
        self.generate_with(&FleetChaosPlan::default())
    }

    /// The whole trace with domain outages from `plan`.
    pub fn generate_with(&self, plan: &FleetChaosPlan) -> Vec<MachineEvent> {
        (0..self.preset.weeks)
            .flat_map(|w| self.week_events_with(w, plan))
            .collect()
    }

    /// Writes the whole clean trace to `path` in the [`BinLog`] binary
    /// format (atomic temp-file + rename).
    ///
    /// [`BinLog`]: raslog::BinLog
    pub fn write_binlog(&self, path: &std::path::Path) -> Result<usize, raslog::BinLogError> {
        let events = self.generate();
        raslog::BinLog::write_file(path, &events)?;
        Ok(events.len())
    }

    /// The whole clean trace, served from a [`BinLog`] cache at `path`.
    ///
    /// Any read failure — missing file, version/endianness mismatch,
    /// torn tail — falls back to regenerating and rewriting the cache;
    /// a failed *write* still returns the freshly generated trace. The
    /// caller owns the cache key: `path` must encode every parameter the
    /// trace depends on (preset and seed), since the binary format
    /// stores events, not provenance.
    ///
    /// [`BinLog`]: raslog::BinLog
    pub fn generate_cached(&self, path: &std::path::Path) -> Vec<MachineEvent> {
        if let Ok(events) = raslog::BinLog::read_file(path) {
            return events;
        }
        let events = self.generate();
        let _ = raslog::BinLog::write_file(path, &events);
        events
    }
}

fn poisson(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    Poisson::new(mean).expect("positive mean").sample(rng) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetGenerator {
        FleetGenerator::new(FleetPreset::datacenter(60).with_weeks(4), 11)
    }

    #[test]
    fn binlog_cache_round_trips_and_recovers_from_corruption() {
        let g = small();
        let dir = std::env::temp_dir().join(format!("dml-fleet-cache-{}", std::process::id()));
        let path = dir.join("trace.dmlb");
        let fresh = g.generate();
        // First call populates the cache, second serves from it.
        assert_eq!(g.generate_cached(&path), fresh);
        assert_eq!(raslog::BinLog::read_file(&path).unwrap(), fresh);
        assert_eq!(g.generate_cached(&path), fresh);
        // A torn cache regenerates instead of erroring.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert_eq!(g.generate_cached(&path), fresh);
        assert_eq!(raslog::BinLog::read_file(&path).unwrap(), fresh);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weeks_are_deterministic_and_addressable() {
        let g = small();
        let a = g.week_events(2);
        let b = g.week_events(2);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Different weeks differ.
        assert_ne!(g.week_events(1), a);
    }

    #[test]
    fn events_stay_inside_their_week_and_sorted() {
        let g = small();
        for week in 0..4 {
            let evs = g.week_events(week);
            let lo = Timestamp::from_secs(week * WEEK_SECS);
            let hi = Timestamp::from_secs((week + 1) * WEEK_SECS);
            for pair in evs.windows(2) {
                assert!(pair[0].event.time <= pair[1].event.time);
            }
            assert!(evs.iter().all(|e| e.event.time >= lo && e.event.time < hi));
        }
    }

    #[test]
    fn machines_are_in_range_and_fatals_present() {
        let g = small();
        let all = g.generate();
        assert!(all.iter().all(|e| e.machine < 60));
        let fatals = all.iter().filter(|e| e.event.fatal).count();
        assert!(fatals > 0, "no fatals in the trace");
    }

    #[test]
    fn domain_outage_hits_every_member_machine() {
        let g = small();
        let domain = FailureDomain::Pdu(1);
        let plan = FleetChaosPlan {
            outages: vec![DomainOutage {
                week: 2,
                domain,
                onset_secs: WEEK_SECS / 2,
            }],
            ..FleetChaosPlan::default()
        };
        let week = g.week_events_with(2, &plan);
        let members = g.preset().topology.machines_in(domain);
        for m in &members {
            assert!(
                week.iter().any(|e| e.machine == *m
                    && e.event.fatal
                    && e.event.type_id == types::outage_fatal(0)),
                "machine {m} missing outage fatal"
            );
        }
        // The outage adds fatals over the clean week.
        let clean = g.week_events(2);
        let clean_fatals = clean.iter().filter(|e| e.event.fatal).count();
        let outage_fatals = week.iter().filter(|e| e.event.fatal).count();
        assert!(outage_fatals >= clean_fatals + members.len());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_in_serving_range() {
        let topo = FleetTopology::new(200);
        let a = FleetChaosPlan::seeded(7, 4, 12, 8, &topo);
        let b = FleetChaosPlan::seeded(7, 4, 12, 8, &topo);
        assert_eq!(a, b);
        assert!(a.shard_fault_count() > 0);
        assert!(!a.outages.is_empty());
        for f in a.kills.iter().chain(&a.stalls).chain(&a.corruptions) {
            assert!(f.week > 4 && f.week < 12);
            assert!(f.shard < 8);
        }
        // Too-short runs get an empty plan rather than out-of-range faults.
        let empty = FleetChaosPlan::seeded(7, 11, 12, 8, &topo);
        assert_eq!(empty.shard_fault_count(), 0);
    }

    #[test]
    fn rollout_faults_are_append_only_over_the_seeded_plan() {
        let topo = FleetTopology::new(200);
        let base = FleetChaosPlan::seeded(7, 4, 12, 8, &topo);
        let with = base.clone().with_rollout_faults(4, 12);
        // The seeded draws are untouched: same stalls, corruptions and
        // outages, and every original kill is still scheduled.
        assert_eq!(with.stalls, base.stalls);
        assert_eq!(with.corruptions, base.corruptions);
        assert_eq!(with.outages, base.outages);
        assert_eq!(&with.kills[..base.kills.len()], &base.kills[..]);
        assert_eq!(with.kills.len(), base.kills.len() + 1);
        // Every serving week's retrain is poisoned; the extra faults
        // land inside the serving range.
        assert_eq!(with.poison_retrain_weeks, (5..12).collect::<Vec<_>>());
        assert_eq!(with.corrupt_registry_weeks.len(), 1);
        for w in with
            .corrupt_registry_weeks
            .iter()
            .chain([with.kills.last().unwrap().week].iter())
        {
            assert!(*w > 4 && *w < 12, "fault week {w} outside serving range");
        }
        // Too-short runs stay untouched.
        let empty = FleetChaosPlan::default().with_rollout_faults(11, 12);
        assert!(empty.poison_retrain_weeks.is_empty());
        assert!(empty.kills.is_empty());
    }
}
