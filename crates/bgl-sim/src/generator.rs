//! The generator: orchestrates jobs, faults, cascades, noise and reporting
//! into a raw RAS log.
//!
//! Week streams are independently addressable — `week_events(w)` depends
//! only on `(seed, w)` and the deterministic regime schedule — so callers
//! can either materialize a whole log ([`Generator::generate`]) or stream
//! weeks through preprocessing without holding the raw log in memory.

use crate::cascade::Regime;
use crate::faults::{generate_fatals, FatalOccurrence};
use crate::jobs::{job_at, Job, JobModel};
use crate::noise::generate_noise;
use crate::presets::SystemPreset;
use crate::regime::RegimeSchedule;
use crate::reporting::expand;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raslog::{
    Duration, EventCatalog, Facility, JobId, Location, LogStore, RasEvent, RecordSource, Timestamp,
    WEEK_MS,
};

/// What the generator *intended*: useful for validating the pipeline and
/// for oracle-based tests, never shown to the learners.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Every intended fatal occurrence.
    pub fatals: Vec<FatalOccurrence>,
    /// How many of them were preceded by a planted precursor cascade.
    pub cued_fatals: usize,
}

/// A fully materialized log plus its ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedLog {
    /// The raw, duplicated RAS log.
    pub store: LogStore,
    /// The generator's intent.
    pub truth: GroundTruth,
}

/// Synthesizes RAS logs for one system preset.
#[derive(Debug, Clone)]
pub struct Generator {
    preset: SystemPreset,
    catalog: EventCatalog,
    schedule: RegimeSchedule,
    job_model: JobModel,
    seed: u64,
}

impl Generator {
    /// Creates a generator with the standard catalog.
    pub fn new(preset: SystemPreset, seed: u64) -> Self {
        let catalog = crate::catalog::standard_catalog();
        let schedule = RegimeSchedule::generate(&catalog, &preset.regime, seed);
        let job_model = JobModel::new(preset.topology);
        Generator {
            preset,
            catalog,
            schedule,
            job_model,
            seed,
        }
    }

    /// The event catalog in use.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// The preset in use.
    pub fn preset(&self) -> &SystemPreset {
        &self.preset
    }

    /// The hidden regime in force during week `w` (for oracle tests).
    pub fn regime(&self, week: i64) -> &Regime {
        self.schedule.for_week(week)
    }

    /// Picks a plausible location for an event of `facility`.
    fn location_for<R: Rng>(&self, facility: Facility, rng: &mut R) -> Location {
        let topo = &self.preset.topology;
        match facility {
            Facility::Kernel | Facility::App => topo.random_chip(rng),
            Facility::Monitor | Facility::Discovery => {
                if rng.gen_bool(0.7) {
                    topo.random_node_card(rng)
                } else {
                    topo.random_service_card(rng)
                }
            }
            Facility::Hardware => topo.random_midplane(rng),
            Facility::LinkCard => topo.random_link_card(rng),
            Facility::Mmcs | Facility::Cmcs => topo.random_service_card(rng),
            Facility::BglMaster | Facility::ServNet => Location::System,
        }
    }

    /// Generates the raw records and ground truth for week `w`.
    ///
    /// Records are sorted by time and carry record ids
    /// `w·10⁹, w·10⁹+1, …` so ids are unique across weeks and increase with
    /// time inside a week.
    pub fn week_events(&self, week: i64) -> (Vec<RasEvent>, GroundTruth) {
        assert!(
            (0..self.preset.weeks).contains(&week),
            "week {week} out of range"
        );
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (week as u64).wrapping_mul(0xd129_2e47_91fa_c0de));
        let from = Timestamp(week * WEEK_MS);
        let to = Timestamp((week + 1) * WEEK_MS);
        let regime = self.schedule.for_week(week);

        let jobs = self
            .job_model
            .schedule(from, to, (week as u32) * 100_000, &mut rng);
        let fatals = generate_fatals(&self.preset.fault, regime, from, to, &mut rng);
        let noise = generate_noise(&self.preset.noise, &self.catalog, week, &mut rng);

        let mut out: Vec<RasEvent> = Vec::new();
        let mut truth = GroundTruth {
            fatals: fatals.clone(),
            cued_fatals: 0,
        };

        // Fatal occurrences, their cascades, and their duplicated reports.
        for f in &fatals {
            let facility = self.catalog.def(f.type_id).facility;
            let loc = self.location_for(facility, &mut rng);
            let job = job_at(&jobs, f.time, &loc).map(|j| j.id);
            let job = job.or_else(|| fallback_job(&jobs, f.time));

            if let Some(rule) = regime.rule_for(f.type_id) {
                if rng.gen_bool(rule.fire_prob) {
                    truth.cued_fatals += 1;
                    for &p in &rule.precursors {
                        let lead = rng.gen_range(rule.min_lead.millis()..=rule.max_lead.millis());
                        let pt = (f.time - Duration(lead)).max(from);
                        let ploc = self.location_for(self.catalog.def(p).facility, &mut rng);
                        expand(
                            pt,
                            p,
                            ploc,
                            job,
                            RecordSource::Ras,
                            &self.catalog,
                            &self.preset.topology,
                            &self.preset.reporting,
                            &mut rng,
                            &mut out,
                        );
                    }
                }
            }
            expand(
                f.time,
                f.type_id,
                loc,
                job,
                RecordSource::Ras,
                &self.catalog,
                &self.preset.topology,
                &self.preset.reporting,
                &mut rng,
                &mut out,
            );
        }

        // False cues: precursor chains with no fatal behind them.
        for rule in &regime.rules {
            let n = poisson_count(rule.false_cues_per_week, &mut rng);
            for _ in 0..n {
                let t0 = Timestamp(rng.gen_range(from.millis()..to.millis()));
                for &p in &rule.precursors {
                    let jitter = Duration::from_secs(rng.gen_range(0..60));
                    let ploc = self.location_for(self.catalog.def(p).facility, &mut rng);
                    let job = fallback_job(&jobs, t0);
                    expand(
                        t0 + jitter,
                        p,
                        ploc,
                        job,
                        RecordSource::Ras,
                        &self.catalog,
                        &self.preset.topology,
                        &self.preset.reporting,
                        &mut rng,
                        &mut out,
                    );
                }
            }
        }

        // Background noise.
        for e in &noise {
            let facility = self.catalog.def(e.type_id).facility;
            let loc = self.location_for(facility, &mut rng);
            let job = job_at(&jobs, e.time, &loc).map(|j| j.id);
            expand(
                e.time,
                e.type_id,
                loc,
                job,
                e.source,
                &self.catalog,
                &self.preset.topology,
                &self.preset.reporting,
                &mut rng,
                &mut out,
            );
        }

        // Re-report offsets may spill past the week boundary; clamp them so
        // concatenated week streams stay globally time-sorted.
        let last_second = Timestamp(to.millis() - raslog::SECOND_MS);
        for e in &mut out {
            e.time = e.time.min(last_second);
        }
        out.sort_by_key(|e| e.time);
        for (i, e) in out.iter_mut().enumerate() {
            e.record_id = week as u64 * 1_000_000_000 + i as u64;
        }
        (out, truth)
    }

    /// Materializes the whole log.
    pub fn generate(&self) -> GeneratedLog {
        let mut events = Vec::new();
        let mut truth = GroundTruth::default();
        for w in 0..self.preset.weeks {
            let (mut week_events, week_truth) = self.week_events(w);
            events.append(&mut week_events);
            truth.fatals.extend(week_truth.fatals);
            truth.cued_fatals += week_truth.cued_fatals;
        }
        GeneratedLog {
            store: LogStore::from_events(events),
            truth,
        }
    }
}

/// The most recently started job running at `t`, regardless of location —
/// used when an event strikes outside any partition.
fn fallback_job(jobs: &[Job], t: Timestamp) -> Option<JobId> {
    jobs.iter()
        .rev()
        .find(|j| t >= j.start && t < j.end)
        .map(|j| j.id)
}

fn poisson_count<R: Rng>(mean: f64, rng: &mut R) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    use rand_distr::{Distribution, Poisson};
    Poisson::new(mean).expect("positive mean").sample(rng) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::SystemPreset;

    fn small_gen(seed: u64) -> Generator {
        Generator::new(
            SystemPreset::anl().with_weeks(3).with_volume_scale(0.05),
            seed,
        )
    }

    #[test]
    fn weeks_are_deterministic_and_sorted() {
        let g = small_gen(42);
        let (a, ta) = g.week_events(1);
        let (b, tb) = g.week_events(1);
        assert_eq!(a, b);
        assert_eq!(ta.fatals, tb.fatals);
        assert!(!a.is_empty());
        for w in a.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for e in &a {
            assert_eq!(e.time.week_index(), 1);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = small_gen(1).week_events(0);
        let (b, _) = small_gen(2).week_events(0);
        assert_ne!(a, b);
    }

    #[test]
    fn record_ids_unique_and_increasing() {
        let g = small_gen(7);
        let log = g.generate();
        let ids: Vec<u64> = log.store.events().iter().map(|e| e.record_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate record ids");
    }

    #[test]
    fn truth_counts_cued_fatals() {
        let g = small_gen(11);
        let log = g.generate();
        assert!(!log.truth.fatals.is_empty());
        assert!(log.truth.cued_fatals <= log.truth.fatals.len());
        // Coverage target is 35 % and fire probabilities average ~0.75, so
        // the cued share should be well below half but above zero.
        let share = log.truth.cued_fatals as f64 / log.truth.fatals.len() as f64;
        assert!(share > 0.02 && share < 0.7, "cued share {share}");
    }

    #[test]
    fn planted_precursors_appear_in_log() {
        let g = small_gen(13);
        let (events, truth) = g.week_events(0);
        let regime = g.regime(0);
        // Find a cued fatal: a fatal with a rule whose precursor entry data
        // appears in the preceding 5 minutes.
        let catalog = g.catalog();
        let mut found = 0;
        for f in &truth.fatals {
            let Some(rule) = regime.rule_for(f.type_id) else {
                continue;
            };
            let names: Vec<&str> = rule
                .precursors
                .iter()
                .map(|&p| catalog.def(p).name.as_str())
                .collect();
            let window_start = f.time - Duration::from_secs(400);
            let hits = events
                .iter()
                .filter(|e| e.time >= window_start && e.time < f.time)
                .filter(|e| names.contains(&e.entry_data.as_str()))
                .count();
            if hits >= names.len() {
                found += 1;
            }
        }
        if truth.cued_fatals > 0 {
            assert!(
                found > 0,
                "no cascades found despite {} cued fatals",
                truth.cued_fatals
            );
        }
    }

    #[test]
    fn fatal_severities_match_catalog_logging() {
        let g = small_gen(17);
        let (events, _) = g.week_events(0);
        let catalog = g.catalog();
        for e in &events {
            let id = catalog
                .lookup(e.facility, &e.entry_data)
                .expect("known type");
            assert_eq!(e.severity, catalog.def(id).logged_severity);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_week_panics() {
        small_gen(1).week_events(99);
    }
}
