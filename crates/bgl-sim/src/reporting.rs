//! Duplicated reporting: one logical event, many log records.
//!
//! Every compute chip runs a polling agent, and a job spans many chips, so
//! one failure is reported once per assigned chip (spatial duplication) and
//! re-reported by the poller for a while (temporal duplication). The
//! logging granularity is sub-second but recorded times are in seconds, so
//! identical timestamps abound. Preprocessing (Table 4) removes ~98 % of
//! records at a 300 s threshold; this module is what makes that work
//! meaningful in the synthetic logs.

use crate::topology::Topology;
use rand::Rng;
use rand_distr::{Distribution, Poisson};
use raslog::{
    Duration, EventCatalog, EventTypeId, Facility, JobId, Location, RasEvent, RecordSource,
    Timestamp, SECOND_MS,
};
use serde::{Deserialize, Serialize};

/// Duplication intensities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportingConfig {
    /// Mean total records per logical event, per facility.
    pub per_facility_dup: [f64; 10],
    /// Mean records per machine-check storm event (diagnostics hammer the
    /// log).
    pub machine_check_dup: f64,
    /// Mean records per fatal occurrence (every chip of the job reports).
    pub fatal_dup: f64,
}

impl ReportingConfig {
    /// ANL-like duplication: enormous KERNEL multiplicity (the raw ANL log
    /// has ~5.8 M KERNEL records that compress ~200×).
    pub fn anl_like() -> Self {
        let mut per_facility_dup = [2.0; 10];
        per_facility_dup[Facility::App.index()] = 3.0;
        per_facility_dup[Facility::Discovery.index()] = 7.0;
        per_facility_dup[Facility::Kernel.index()] = 33.0;
        per_facility_dup[Facility::Monitor.index()] = 2.5;
        per_facility_dup[Facility::Hardware.index()] = 3.0;
        ReportingConfig {
            per_facility_dup,
            machine_check_dup: 95.0,
            fatal_dup: 25.0,
        }
    }

    /// SDSC-like duplication: APP and DISCOVERY compress hard (Table 4:
    /// APP 26 358 → 754 at 10 s), KERNEL ~100×.
    pub fn sdsc_like() -> Self {
        let mut per_facility_dup = [2.0; 10];
        per_facility_dup[Facility::App.index()] = 20.0;
        per_facility_dup[Facility::Discovery.index()] = 10.0;
        per_facility_dup[Facility::Kernel.index()] = 30.0;
        per_facility_dup[Facility::LinkCard.index()] = 5.0;
        ReportingConfig {
            per_facility_dup,
            machine_check_dup: 35.0,
            fatal_dup: 26.0,
        }
    }

    /// Mean record count for a logical event.
    pub fn mean_for(&self, facility: Facility, source: RecordSource, fatal: bool) -> f64 {
        if fatal {
            self.fatal_dup
        } else if source == RecordSource::MachineCheck {
            self.machine_check_dup
        } else {
            self.per_facility_dup[facility.index()]
        }
    }
}

/// Offsets for temporal re-reports: mostly immediate, a tail reaching past
/// the 300 s filter threshold so Table 4's slow improvement beyond 300 s
/// reproduces.
fn duplicate_offset<R: Rng>(rng: &mut R) -> Duration {
    let r: f64 = rng.gen();
    let secs = if r < 0.70 {
        rng.gen_range(0..10)
    } else if r < 0.95 {
        rng.gen_range(10..300)
    } else {
        rng.gen_range(300..420)
    };
    Duration::from_secs(secs)
}

/// Expands one logical event into its duplicated records and appends them
/// to `out`. Record ids are assigned later by the generator.
#[allow(clippy::too_many_arguments)]
pub fn expand<R: Rng>(
    time: Timestamp,
    type_id: EventTypeId,
    location: Location,
    job_id: Option<JobId>,
    source: RecordSource,
    catalog: &EventCatalog,
    topology: &Topology,
    config: &ReportingConfig,
    rng: &mut R,
    out: &mut Vec<RasEvent>,
) {
    let def = catalog.def(type_id);
    // Recorded times have whole-second granularity.
    let base = Timestamp((time.millis() / SECOND_MS) * SECOND_MS);
    let mean = config.mean_for(def.facility, source, def.fatal).max(1.0);
    let copies = if mean <= 1.0 {
        0
    } else {
        Poisson::new(mean - 1.0).expect("positive mean").sample(rng) as usize
    };

    let proto = RasEvent {
        record_id: 0,
        source,
        time: base,
        job_id,
        location,
        entry_data: def.name.clone(),
        facility: def.facility,
        severity: def.logged_severity,
    };
    out.push(proto.clone());

    // The node card containing the primary location, for spatial spread.
    let card = match location {
        Location::Chip {
            rack,
            midplane,
            node_card,
            ..
        }
        | Location::ComputeCard {
            rack,
            midplane,
            node_card,
            ..
        } => Some(Location::NodeCard {
            rack,
            midplane,
            node_card,
        }),
        Location::NodeCard { .. } => Some(location),
        _ => None,
    };

    for _ in 0..copies {
        let mut dup = proto.clone();
        if rng.gen_bool(0.5) {
            // Spatial duplicate: another chip reports the same event at the
            // same recorded second (same Entry Data and Job ID, different
            // Location — exactly what spatial compression removes).
            if let Some(card) = card {
                dup.location = topology.random_chip_in_node_card(card, rng);
            }
        } else {
            // Temporal duplicate: the poller re-reports at the same
            // location a bit later.
            dup.time = base + duplicate_offset(rng);
        }
        out.push(dup);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (EventCatalog, Topology, ReportingConfig) {
        (
            standard_catalog(),
            Topology::new(1, 16),
            ReportingConfig::anl_like(),
        )
    }

    fn kernel_fatal(catalog: &EventCatalog) -> EventTypeId {
        catalog.lookup(Facility::Kernel, "torus failure").unwrap()
    }

    #[test]
    fn expands_with_expected_multiplicity() {
        let (catalog, topo, config) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        let loc = Location::chip(0, 0, 3, 5, 1);
        for _ in 0..200 {
            expand(
                Timestamp::from_secs(1000),
                kernel_fatal(&catalog),
                loc,
                Some(JobId(9)),
                RecordSource::Ras,
                &catalog,
                &topo,
                &config,
                &mut rng,
                &mut out,
            );
        }
        let mean = out.len() as f64 / 200.0;
        assert!(
            (mean - config.fatal_dup).abs() / config.fatal_dup < 0.15,
            "mean {mean}"
        );
    }

    #[test]
    fn copies_share_entry_data_and_job() {
        let (catalog, topo, config) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        expand(
            Timestamp::from_secs(123),
            kernel_fatal(&catalog),
            Location::chip(0, 1, 7, 2, 0),
            Some(JobId(5)),
            RecordSource::Ras,
            &catalog,
            &topo,
            &config,
            &mut rng,
            &mut out,
        );
        assert!(!out.is_empty());
        for e in &out {
            assert_eq!(e.entry_data, out[0].entry_data);
            assert_eq!(e.job_id, Some(JobId(5)));
            assert_eq!(e.facility, Facility::Kernel);
            assert!(e.time >= out[0].time);
            assert_eq!(e.time.millis() % SECOND_MS, 0, "second granularity");
        }
        // Spatial duplicates stay on the same node card.
        let card = Location::NodeCard {
            rack: 0,
            midplane: 1,
            node_card: 7,
        };
        for e in &out {
            if e.time == out[0].time {
                assert!(card.contains(&e.location), "{}", e.location);
            }
        }
    }

    #[test]
    fn machine_check_events_duplicate_heavily() {
        let (catalog, topo, config) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let info = catalog.lookup(Facility::Kernel, "parity info").unwrap();
        let mut out = Vec::new();
        for _ in 0..50 {
            expand(
                Timestamp::from_secs(50),
                info,
                Location::chip(0, 0, 0, 0, 0),
                None,
                RecordSource::MachineCheck,
                &catalog,
                &topo,
                &config,
                &mut rng,
                &mut out,
            );
        }
        let mean = out.len() as f64 / 50.0;
        assert!(
            (mean - config.machine_check_dup).abs() / config.machine_check_dup < 0.2,
            "machine-check mean {mean} vs configured {}",
            config.machine_check_dup
        );
    }

    #[test]
    fn temporal_offsets_mostly_under_300s() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut under10 = 0;
        let mut under300 = 0;
        let n = 20_000;
        for _ in 0..n {
            let d = duplicate_offset(&mut rng).as_secs();
            if d < 10 {
                under10 += 1;
            }
            if d < 300 {
                under300 += 1;
            }
        }
        assert!((under10 as f64 / n as f64 - 0.70).abs() < 0.02);
        assert!((under300 as f64 / n as f64 - 0.95).abs() < 0.02);
    }
}
