//! Ground-truth precursor rules.
//!
//! Real failure logs contain *cause-and-effect chains*: specific warning
//! events precede specific fatal events within minutes (the paper's SDSC
//! example: `networkWarningInterrupt, networkError → socketReadFailure`).
//! The generator plants such chains explicitly — a hidden rule set the
//! association-rule learner is supposed to rediscover — while leaving the
//! majority of fatal events unheralded (the paper measures up to 75 % of
//! fatals with no precursor warning).

use rand::seq::SliceRandom;
use rand::Rng;
use raslog::{Duration, EventCatalog, EventTypeId};
use serde::{Deserialize, Serialize};

/// One hidden cause-and-effect chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CascadeRule {
    /// Non-fatal precursor types emitted before the fatal event.
    pub precursors: Vec<EventTypeId>,
    /// The fatal type this chain leads to.
    pub fatal: EventTypeId,
    /// Probability that an occurrence of `fatal` is preceded by the chain.
    pub fire_prob: f64,
    /// Expected number of *false cues* per week: the precursors appear but
    /// no fatal follows, which caps the achievable rule confidence.
    pub false_cues_per_week: f64,
    /// Precursors are emitted within `[min_lead, max_lead]` before the
    /// fatal event.
    pub min_lead: Duration,
    /// See `min_lead`.
    pub max_lead: Duration,
}

impl CascadeRule {
    /// Draws a random rule targeting `fatal`, with 2–4 precursors picked
    /// from `nonfatal_pool`.
    pub fn random<R: Rng>(fatal: EventTypeId, nonfatal_pool: &[EventTypeId], rng: &mut R) -> Self {
        let k = rng.gen_range(2..=4usize).min(nonfatal_pool.len());
        let mut precursors: Vec<EventTypeId> =
            nonfatal_pool.choose_multiple(rng, k).copied().collect();
        precursors.sort();
        CascadeRule {
            precursors,
            fatal,
            fire_prob: rng.gen_range(0.65..0.95),
            false_cues_per_week: rng.gen_range(0.0..0.5),
            min_lead: Duration::from_secs(20),
            max_lead: Duration::from_secs(240),
        }
    }
}

/// Non-fatal types eligible as precursors: real cause-and-effect chains
/// run through *unusual* warnings, not each facility's routine chatter, so
/// the few most frequent types of every facility (the head of the noise
/// model's per-facility Zipf) are excluded.
pub fn precursor_pool(catalog: &EventCatalog) -> Vec<EventTypeId> {
    let mut pool = Vec::new();
    for facility in raslog::Facility::ALL {
        let facility_nonfatal: Vec<EventTypeId> = catalog
            .iter()
            .filter(|d| d.facility == facility && !d.fatal)
            .map(|d| d.id)
            .collect();
        pool.extend(facility_nonfatal.into_iter().skip(4));
    }
    pool
}

/// The full hidden rule set plus the fatal-type mixture in force during a
/// stretch of weeks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regime {
    /// Hidden cause-and-effect chains, at most one per fatal type.
    pub rules: Vec<CascadeRule>,
    /// Relative occurrence weight of every fatal type in the catalog
    /// (indexed by position in `fatal_types`).
    pub fatal_weights: Vec<f64>,
    /// The fatal types, aligned with `fatal_weights`.
    pub fatal_types: Vec<EventTypeId>,
    /// The coverage target this regime was created with; drift re-targets
    /// against this value (using the realized coverage would ratchet it
    /// upward, since rule selection always overshoots a little).
    pub target_coverage: f64,
    /// Multiplier on the background renewal scale: workload and upgrade
    /// cycles change how often the machine fails, which is what makes a
    /// statically fitted inter-arrival distribution go stale.
    pub rate_multiplier: f64,
    /// Multiplier on the burst probability (storm-proneness drifts too).
    pub burst_multiplier: f64,
}

impl Regime {
    /// Draws an initial regime.
    ///
    /// `precursor_coverage` is the target fraction of fatal *occurrences*
    /// (by weight) whose type carries a cascade rule — the complement of
    /// the paper's "fatals without precursors" share.
    pub fn random<R: Rng>(catalog: &EventCatalog, precursor_coverage: f64, rng: &mut R) -> Self {
        let fatal_types = catalog.fatal_ids();
        let nonfatal = precursor_pool(catalog);
        // Zipf-like weights: a few fatal types dominate, most are rare.
        // Shuffled so the heavy types differ between seeds/regimes.
        let mut fatal_weights: Vec<f64> = (0..fatal_types.len())
            .map(|i| 1.0 / (i as f64 + 1.0))
            .collect();
        fatal_weights.shuffle(rng);

        let mut regime = Regime {
            rules: Vec::new(),
            fatal_weights,
            fatal_types,
            target_coverage: precursor_coverage,
            rate_multiplier: 1.0,
            burst_multiplier: 1.0,
        };
        regime.retarget_coverage(precursor_coverage, &nonfatal, rng);
        regime
    }

    /// Rebuilds which fatal types carry rules so the cumulative weight of
    /// rule-bearing types approximates `coverage`, *preserving* the chains
    /// of types that keep their rule (so ordinary weight drift does not
    /// churn every rule).
    fn retarget_coverage<R: Rng>(
        &mut self,
        coverage: f64,
        nonfatal_pool: &[EventTypeId],
        rng: &mut R,
    ) {
        let total: f64 = self.fatal_weights.iter().sum();
        // Visit fatal types from heaviest to lightest.
        let mut order: Vec<usize> = (0..self.fatal_types.len()).collect();
        order.sort_by(|&a, &b| {
            self.fatal_weights[b]
                .partial_cmp(&self.fatal_weights[a])
                .expect("finite")
        });
        let existing: Vec<CascadeRule> = std::mem::take(&mut self.rules);
        let mut covered = 0.0;
        for idx in order {
            if covered / total >= coverage {
                break;
            }
            covered += self.fatal_weights[idx];
            let fatal = self.fatal_types[idx];
            match existing.iter().find(|r| r.fatal == fatal) {
                Some(rule) => self.rules.push(rule.clone()),
                None => self
                    .rules
                    .push(CascadeRule::random(fatal, nonfatal_pool, rng)),
            }
        }
    }

    /// Fraction of fatal-occurrence weight covered by cascade rules.
    pub fn coverage(&self) -> f64 {
        let total: f64 = self.fatal_weights.iter().sum();
        let covered: f64 = self
            .fatal_types
            .iter()
            .zip(&self.fatal_weights)
            .filter(|(t, _)| self.rules.iter().any(|r| r.fatal == **t))
            .map(|(_, w)| w)
            .sum();
        covered / total
    }

    /// The rule targeting `fatal`, if any.
    pub fn rule_for(&self, fatal: EventTypeId) -> Option<&CascadeRule> {
        self.rules.iter().find(|r| r.fatal == fatal)
    }

    /// Evolves the regime: each rule is independently replaced with
    /// probability `drift`, and the same fraction of the fatal-type weight
    /// mass is re-randomized. `drift = 1.0` is a full reconfiguration.
    pub fn drifted<R: Rng>(&self, drift: f64, catalog: &EventCatalog, rng: &mut R) -> Regime {
        let nonfatal = precursor_pool(catalog);
        let mut next = self.clone();
        for rule in &mut next.rules {
            if rng.gen_bool(drift.clamp(0.0, 1.0)) {
                // Replace the chain while keeping the same fatal target so
                // coverage stays put but the learned antecedents go stale.
                *rule = CascadeRule::random(rule.fatal, &nonfatal, rng);
            }
        }
        for w in &mut next.fatal_weights {
            if rng.gen_bool((drift * 0.5).clamp(0.0, 1.0)) {
                *w = rng.gen_range(0.01..1.0);
            }
        }
        // Failure-rate drift: a slow multiplicative random walk week to
        // week, a jump at a reconfiguration.
        let (lo, hi) = if drift >= 0.5 {
            (0.5, 2.0)
        } else {
            (0.90, 1.115)
        };
        next.rate_multiplier = (next.rate_multiplier * rng.gen_range(lo..hi)).clamp(0.30, 3.0);
        next.burst_multiplier = (next.burst_multiplier * rng.gen_range(lo..hi)).clamp(0.30, 2.5);
        // Re-target so rule coverage tracks the drifted weights; chains of
        // surviving targets are preserved, so small drifts churn few rules.
        next.retarget_coverage(self.target_coverage, &nonfatal, rng);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_regime_hits_coverage_target() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(1);
        let regime = Regime::random(&catalog, 0.35, &mut rng);
        let cov = regime.coverage();
        assert!((0.3..0.55).contains(&cov), "coverage {cov}");
        assert!(!regime.rules.is_empty());
        // Rules reference only catalog types with the right classing.
        for r in &regime.rules {
            assert!(catalog.is_fatal(r.fatal));
            for p in &r.precursors {
                assert!(!catalog.is_fatal(*p));
            }
            assert!(r.precursors.len() >= 2 && r.precursors.len() <= 4);
            assert!(r.fire_prob > 0.0 && r.fire_prob < 1.0);
        }
    }

    #[test]
    fn rule_for_finds_target() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(2);
        let regime = Regime::random(&catalog, 0.3, &mut rng);
        let target = regime.rules[0].fatal;
        assert_eq!(regime.rule_for(target).unwrap().fatal, target);
        // A fatal type with no rule returns None.
        let uncovered = regime
            .fatal_types
            .iter()
            .find(|t| regime.rules.iter().all(|r| r.fatal != **t))
            .copied()
            .expect("some type uncovered");
        assert!(regime.rule_for(uncovered).is_none());
    }

    #[test]
    fn zero_drift_is_identity_on_rules() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(3);
        let regime = Regime::random(&catalog, 0.3, &mut rng);
        let next = regime.drifted(0.0, &catalog, &mut rng);
        assert_eq!(next.rules, regime.rules);
        assert_eq!(next.fatal_weights, regime.fatal_weights);
    }

    #[test]
    fn full_drift_rewrites_most_rules() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(4);
        let regime = Regime::random(&catalog, 0.35, &mut rng);
        let next = regime.drifted(1.0, &catalog, &mut rng);
        let unchanged = next
            .rules
            .iter()
            .filter(|r| regime.rules.iter().any(|o| o == *r))
            .count();
        assert!(
            unchanged * 5 <= regime.rules.len(),
            "{unchanged}/{} rules survived a full reconfiguration",
            regime.rules.len()
        );
        // Coverage stays in the same ballpark.
        assert!((next.coverage() - regime.coverage()).abs() < 0.25);
    }

    #[test]
    fn small_drift_changes_few_rules() {
        let catalog = standard_catalog();
        let mut rng = StdRng::seed_from_u64(5);
        let regime = Regime::random(&catalog, 0.35, &mut rng);
        let next = regime.drifted(0.05, &catalog, &mut rng);
        let changed = next
            .rules
            .iter()
            .filter(|r| !regime.rules.iter().any(|o| o == *r))
            .count();
        assert!(changed <= regime.rules.len() / 3, "{changed} rules changed");
    }
}
