//! System presets matching the two case-study machines.
//!
//! | Log      | Period              | Weeks | Raw events | Racks | I/O nodes |
//! |----------|---------------------|-------|------------|-------|-----------|
//! | ANL BGL  | Jan 2005 – Jun 2007 | 112   | 5 887 771  | 1     | 32        |
//! | SDSC BGL | Dec 2004 – Jun 2007 | 132   | 517 247    | 3     | 384       |
//!
//! The ANL log is far larger despite the smaller machine because ANL ran
//! diagnostics aggressively (machine-check storms). The SDSC system went
//! through a major reconfiguration around week 62, visible as an accuracy
//! dip and rule churn in the paper's Figs. 10 and 12.

use crate::faults::FaultConfig;
use crate::noise::NoiseConfig;
use crate::regime::RegimeConfig;
use crate::reporting::ReportingConfig;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Full configuration of one synthetic system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPreset {
    /// Display name ("ANL", "SDSC", …).
    pub name: String,
    /// Machine size.
    pub topology: Topology,
    /// Log length in weeks.
    pub weeks: i64,
    /// Fatal arrival processes.
    pub fault: FaultConfig,
    /// Background noise streams.
    pub noise: NoiseConfig,
    /// Duplicated-reporting intensities.
    pub reporting: ReportingConfig,
    /// Regime drift / reconfiguration parameters.
    pub regime: RegimeConfig,
}

impl SystemPreset {
    /// The ANL-like system: one rack, noisy diagnostics, no mid-life
    /// reconfiguration.
    pub fn anl() -> Self {
        let weeks = 112;
        SystemPreset {
            name: "ANL".to_string(),
            topology: Topology::new(1, 16),
            weeks,
            fault: FaultConfig {
                weibull_shape: 1.6,
                weibull_scale_secs: 50_000.0,
                burst_prob: 0.25,
                burst_size_exponent: 1.35,
                burst_max_size: 60,
                burst_spread_secs: 45.0,
            },
            noise: NoiseConfig::anl_like(),
            reporting: ReportingConfig::anl_like(),
            regime: RegimeConfig {
                weeks,
                weekly_drift: 0.03,
                reconfig_week: None,
                reconfig_drift: 0.8,
                precursor_coverage: 0.20,
            },
        }
    }

    /// The SDSC-like system: three racks, quieter logging, and a major
    /// reconfiguration around week 62.
    pub fn sdsc() -> Self {
        let weeks = 132;
        SystemPreset {
            name: "SDSC".to_string(),
            topology: Topology::new(3, 64),
            weeks,
            fault: FaultConfig {
                weibull_shape: 1.5,
                weibull_scale_secs: 46_000.0,
                burst_prob: 0.33,
                burst_size_exponent: 1.25,
                burst_max_size: 60,
                burst_spread_secs: 45.0,
            },
            noise: NoiseConfig::sdsc_like(),
            reporting: ReportingConfig::sdsc_like(),
            regime: RegimeConfig {
                weeks,
                weekly_drift: 0.03,
                reconfig_week: Some(62),
                reconfig_drift: 0.8,
                precursor_coverage: 0.20,
            },
        }
    }

    /// Scales the *volume* knobs (duplication intensity and storm size) by
    /// `scale`, leaving the signal — fatal arrivals, precursor cascades and
    /// unique noise rates — untouched. Prediction-accuracy experiments are
    /// therefore insensitive to `scale`; only raw-log volume (Tables 2 and
    /// 4, and the filter benchmarks) changes.
    pub fn with_volume_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        for d in &mut self.reporting.per_facility_dup {
            *d = (*d * scale).max(1.0);
        }
        self.reporting.machine_check_dup = (self.reporting.machine_check_dup * scale).max(1.0);
        self.reporting.fatal_dup = (self.reporting.fatal_dup * scale).max(1.0);
        self.noise.storm_mean_events = (self.noise.storm_mean_events * scale).max(1.0);
        self
    }

    /// Truncates the log to `weeks` weeks (for quick tests).
    pub fn with_weeks(mut self, weeks: i64) -> Self {
        assert!(weeks > 0, "need at least one week");
        self.weeks = weeks;
        self.regime.weeks = weeks;
        if let Some(r) = self.regime.reconfig_week {
            if r >= weeks {
                self.regime.reconfig_week = None;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_shapes() {
        let anl = SystemPreset::anl();
        assert_eq!(anl.topology.chips(), 1024);
        assert_eq!(anl.weeks, 112);
        assert!(anl.regime.reconfig_week.is_none());
        let sdsc = SystemPreset::sdsc();
        assert_eq!(sdsc.topology.chips(), 3072);
        assert_eq!(sdsc.weeks, 132);
        assert_eq!(sdsc.regime.reconfig_week, Some(62));
    }

    #[test]
    fn volume_scale_touches_only_volume() {
        let base = SystemPreset::anl();
        let scaled = base.clone().with_volume_scale(0.1);
        assert_eq!(scaled.fault, base.fault);
        assert_eq!(scaled.noise.weekly_rates, base.noise.weekly_rates);
        assert!(scaled.reporting.fatal_dup < base.reporting.fatal_dup);
        assert!(scaled.reporting.fatal_dup >= 1.0);
        assert!(scaled.noise.storm_mean_events < base.noise.storm_mean_events);
    }

    #[test]
    fn with_weeks_drops_out_of_range_reconfig() {
        let sdsc = SystemPreset::sdsc().with_weeks(20);
        assert_eq!(sdsc.weeks, 20);
        assert_eq!(sdsc.regime.weeks, 20);
        assert!(sdsc.regime.reconfig_week.is_none());
        let sdsc_long = SystemPreset::sdsc().with_weeks(80);
        assert_eq!(sdsc_long.regime.reconfig_week, Some(62));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        SystemPreset::anl().with_volume_scale(0.0);
    }
}
