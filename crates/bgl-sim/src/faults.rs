//! Fatal-event arrival processes.
//!
//! Two processes drive fatal occurrences, matching the structure the paper
//! measures on the real logs (Figs. 4–5):
//!
//! 1. a **background renewal process** with Weibull inter-arrival times.
//!    The *body* uses shape > 1 (wear-out: once a machine has gone long
//!    without failing, one becomes increasingly due — what makes the
//!    elapsed-time heuristic of the probability-distribution learner
//!    worth anything);
//! 2. a **burst process**: with some probability a fatal event spawns a
//!    cluster of follow-on fatals within minutes (network and I/O storms
//!    "form a majority of such failures"), the temporal correlation the
//!    statistical base learner exploits.
//!
//! The *pooled* inter-arrival sample is a mixture of second-scale burst
//! gaps and hour-scale body gaps, so a single Weibull MLE over it comes
//! out heavy-tailed (shape < 1) — exactly the k ≈ 0.51 the paper fits in
//! Fig. 5 even though neither component is heavy by itself.

use crate::cascade::Regime;
use rand::Rng;
use rand_distr::{Distribution, Weibull as WeibullDist};
use raslog::{Duration, EventTypeId, Timestamp};
use serde::{Deserialize, Serialize};

/// Configuration of the fatal arrival processes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Weibull shape of background inter-arrivals (< 1 ⇒ bursty).
    pub weibull_shape: f64,
    /// Weibull scale of background inter-arrivals, in seconds.
    pub weibull_scale_secs: f64,
    /// Probability that a fatal event starts a burst.
    pub burst_prob: f64,
    /// Zipf exponent of the burst size: heavy-tailed, so the continuation
    /// probability *escalates* with burst depth — the property behind the
    /// paper's statistical rule "if four failures occur within 300 seconds,
    /// the probability of another failure is 99 %".
    pub burst_size_exponent: f64,
    /// Hard cap on burst size.
    pub burst_max_size: usize,
    /// Burst followers arrive within this many seconds of their trigger.
    pub burst_spread_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            weibull_shape: 1.6,
            weibull_scale_secs: 45_000.0,
            burst_prob: 0.25,
            burst_size_exponent: 1.4,
            burst_max_size: 40,
            burst_spread_secs: 60.0,
        }
    }
}

/// One intended fatal occurrence (before duplication/reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatalOccurrence {
    /// When the failure strikes.
    pub time: Timestamp,
    /// Which fatal type.
    pub type_id: EventTypeId,
    /// `true` when this occurrence is a burst follower (not a renewal
    /// arrival).
    pub burst_follower: bool,
}

/// Samples a fatal type from the regime's weight vector.
fn sample_fatal_type<R: Rng>(regime: &Regime, rng: &mut R) -> EventTypeId {
    let total: f64 = regime.fatal_weights.iter().sum();
    let mut x = rng.gen_range(0.0..total);
    for (t, w) in regime.fatal_types.iter().zip(&regime.fatal_weights) {
        if x < *w {
            return *t;
        }
        x -= w;
    }
    *regime.fatal_types.last().expect("non-empty fatal types")
}

/// Generates all fatal occurrences with times in `[from, to)`, sorted by
/// time.
pub fn generate_fatals<R: Rng>(
    config: &FaultConfig,
    regime: &Regime,
    from: Timestamp,
    to: Timestamp,
    rng: &mut R,
) -> Vec<FatalOccurrence> {
    let weibull = WeibullDist::new(
        config.weibull_scale_secs * regime.rate_multiplier,
        config.weibull_shape,
    )
    .expect("valid weibull");
    let burst_prob = (config.burst_prob * regime.burst_multiplier).clamp(0.0, 0.9);
    let mut out = Vec::new();
    let mut t = from;
    loop {
        let gap_secs: f64 = weibull.sample(rng);
        t = t + Duration((gap_secs * 1000.0).max(1.0) as i64);
        if t >= to {
            break;
        }
        let type_id = sample_fatal_type(regime, rng);
        out.push(FatalOccurrence {
            time: t,
            type_id,
            burst_follower: false,
        });

        // Burst followers: related failures in quick succession, with a
        // heavy-tailed (Zipf) total size so deep bursts keep going.
        if rng.gen_bool(burst_prob) {
            let zipf =
                rand_distr::Zipf::new(config.burst_max_size as u64, config.burst_size_exponent)
                    .expect("valid zipf");
            let size = zipf.sample(rng) as usize; // total fatals in the burst
            let mut bt = t;
            for _ in 1..size {
                let step = rng.gen_range(5.0..config.burst_spread_secs.max(6.0));
                bt = bt + Duration((step * 1000.0) as i64);
                if bt >= to {
                    break;
                }
                // Followers are usually the same failure type (a storm).
                let follow_type = if rng.gen_bool(0.7) {
                    type_id
                } else {
                    sample_fatal_type(regime, rng)
                };
                out.push(FatalOccurrence {
                    time: bt,
                    type_id: follow_type,
                    burst_follower: true,
                });
            }
        }
    }
    out.sort_by_key(|f| f.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn regime(seed: u64) -> Regime {
        let catalog = standard_catalog();
        Regime::random(&catalog, 0.35, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn occurrences_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = regime(1);
        let to = Timestamp::from_secs(14 * 24 * 3600);
        let fatals = generate_fatals(&FaultConfig::default(), &r, Timestamp::ZERO, to, &mut rng);
        assert!(!fatals.is_empty());
        for w in fatals.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        for f in &fatals {
            assert!(f.time >= Timestamp::ZERO && f.time < to);
        }
    }

    #[test]
    fn rate_matches_weibull_mean_roughly() {
        // Mean body gap = scale·Γ(1+1/k); with k=1.6, scale=45_000 ⇒
        // ≈ 40 350 s between renewal arrivals.
        let mut rng = StdRng::seed_from_u64(2);
        let r = regime(2);
        let weeks = 20i64;
        let to = Timestamp::from_secs(weeks * 7 * 24 * 3600);
        let fatals = generate_fatals(&FaultConfig::default(), &r, Timestamp::ZERO, to, &mut rng);
        let renewals = fatals.iter().filter(|f| !f.burst_follower).count() as f64;
        let expected = to.as_secs() as f64 / 40_350.0;
        assert!(
            (renewals - expected).abs() / expected < 0.25,
            "renewals {renewals} vs expected {expected}"
        );
    }

    #[test]
    fn pooled_gaps_fit_heavy_tailed_weibull() {
        // The burst/body mixture must reproduce Fig. 5's shape-below-one
        // fit even though the body alone has shape 1.6.
        let mut rng = StdRng::seed_from_u64(9);
        let r = regime(9);
        let to = Timestamp::from_secs(120 * 24 * 3600);
        let fatals = generate_fatals(&FaultConfig::default(), &r, Timestamp::ZERO, to, &mut rng);
        let gaps: Vec<f64> = fatals
            .windows(2)
            .map(|w| (w[1].time - w[0].time).as_secs_f64())
            .collect();
        let fit = dml_stats_weibull_fit(&gaps);
        assert!(fit < 1.0, "pooled Weibull shape {fit} should be < 1");
    }

    /// Minimal local Weibull shape MLE (avoids a dev-dependency cycle).
    fn dml_stats_weibull_fit(gaps: &[f64]) -> f64 {
        let xs: Vec<f64> = gaps.iter().copied().filter(|&x| x > 0.0).collect();
        let n = xs.len() as f64;
        let mean_ln: f64 = xs.iter().map(|x| x.ln()).sum::<f64>() / n;
        let g = |k: f64| -> f64 {
            let (mut sk, mut skl) = (0.0, 0.0);
            for &x in &xs {
                let xk = (x / 1000.0).powf(k); // scale down to stay finite
                sk += xk;
                skl += xk * (x / 1000.0).ln();
            }
            skl / sk - 1.0 / k - (mean_ln - 1000f64.ln())
        };
        let (mut lo, mut hi) = (0.05f64, 8.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if g(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    #[test]
    fn bursts_create_short_gaps() {
        let mut rng = StdRng::seed_from_u64(3);
        let r = regime(3);
        let to = Timestamp::from_secs(30 * 24 * 3600);
        let config = FaultConfig {
            burst_prob: 0.6,
            ..FaultConfig::default()
        };
        let fatals = generate_fatals(&config, &r, Timestamp::ZERO, to, &mut rng);
        let followers = fatals.iter().filter(|f| f.burst_follower).count();
        assert!(followers > 0, "no burst followers generated");
        // A follower is within burst_spread of *some* earlier fatal.
        let short_gaps = fatals
            .windows(2)
            .filter(|w| (w[1].time - w[0].time).as_secs_f64() < config.burst_spread_secs)
            .count();
        assert!(short_gaps >= followers / 2);
    }

    #[test]
    fn type_sampling_respects_weights() {
        let catalog = standard_catalog();
        let mut r = regime(4);
        // Put all weight on one type.
        let heavy = r.fatal_types[5];
        for w in r.fatal_weights.iter_mut() {
            *w = 1e-9;
        }
        r.fatal_weights[5] = 1.0;
        let mut rng = StdRng::seed_from_u64(5);
        let to = Timestamp::from_secs(60 * 24 * 3600);
        let fatals = generate_fatals(&FaultConfig::default(), &r, Timestamp::ZERO, to, &mut rng);
        let heavy_count = fatals.iter().filter(|f| f.type_id == heavy).count();
        assert!(heavy_count * 10 >= fatals.len() * 9, "weights ignored");
        assert!(catalog.is_fatal(heavy));
    }

    #[test]
    fn empty_window_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = regime(6);
        let fatals = generate_fatals(
            &FaultConfig::default(),
            &r,
            Timestamp::from_secs(100),
            Timestamp::from_secs(100),
            &mut rng,
        );
        assert!(fatals.is_empty());
    }
}
