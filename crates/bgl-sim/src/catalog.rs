//! The standard Blue Gene/L event catalog.
//!
//! Builds the 219-type vocabulary with the exact per-facility fatal and
//! non-fatal counts of Table 3:
//!
//! | Facility   | Fatal | Non-fatal |
//! |------------|-------|-----------|
//! | APP        | 10    | 7         |
//! | BGLMASTER  | 2     | 2         |
//! | CMCS       | 0     | 4         |
//! | DISCOVERY  | 0     | 24        |
//! | HARDWARE   | 1     | 12        |
//! | KERNEL     | 46    | 90        |
//! | LINKCARD   | 1     | 0         |
//! | MMCS       | 0     | 5         |
//! | MONITOR    | 9     | 5         |
//! | SERV_NET   | 0     | 1         |
//! | **TOTAL**  | **69**| **150**   |
//!
//! A handful of non-fatal types are logged with `FATAL` severity — the
//! "fake fatal" entries that administrators helped remove from the failure
//! list; the categorizer relies on the catalog's corrected classing.

use raslog::{EventCatalog, Facility, Severity};

/// KERNEL subsystems whose hard faults are truly fatal (23 × 2 kinds = 46).
const KERNEL_FATAL_SUBSYSTEMS: [&str; 23] = [
    "cache",
    "torus",
    "tree network",
    "collective network",
    "barrier network",
    "edram bank",
    "ddr memory",
    "cpu",
    "fpu",
    "broadcast",
    "node map file",
    "rts startup",
    "socket",
    "lustre io",
    "memory controller",
    "bic interrupt",
    "scratch register",
    "instruction address",
    "data address",
    "kernel panic handler",
    "real time clock",
    "mailbox",
    "program counter",
];

/// KERNEL subsystems with only recoverable events (30 × 3 kinds = 90).
const KERNEL_NONFATAL_SUBSYSTEMS: [&str; 30] = [
    "l1 cache",
    "l2 cache",
    "l3 cache",
    "torus link",
    "tree link",
    "ethernet",
    "ido packet",
    "parity",
    "ecc",
    "tlb",
    "alignment",
    "syscall",
    "interrupt controller",
    "dma",
    "uart",
    "jtag",
    "power state",
    "thermal sensor",
    "clock domain",
    "memory scrub",
    "page table",
    "kernel module",
    "network stack",
    "io node link",
    "ciod",
    "debug unit",
    "performance counter",
    "watchdog",
    "firmware",
    "microcode",
];

const DISCOVERY_COMPONENTS: [&str; 6] = [
    "nodecard",
    "servicecard",
    "linkcard",
    "clockcard",
    "fanmodule",
    "powermodule",
];
const DISCOVERY_ISSUES: [&str; 4] = [
    "communication warning",
    "read error",
    "presence warning",
    "vpd error",
];

/// Builds the standard 219-type Blue Gene/L catalog.
pub fn standard_catalog() -> EventCatalog {
    let mut c = EventCatalog::new();

    // ---- APP: 10 fatal, 7 non-fatal -------------------------------------
    for name in [
        "load program failure",
        "function call failure",
        "application segmentation fault",
        "mpi abort failure",
        "application assertion failure",
        "job kill failure",
        "process exit failure",
        "application io failure",
        "signal termination failure",
        "stack overflow failure",
    ] {
        c.add(Facility::App, name, Severity::Failure, true);
    }
    for (name, sev) in [
        ("load program info", Severity::Info),
        ("application start info", Severity::Info),
        ("application exit info", Severity::Info),
        ("job queue warning", Severity::Warning),
        ("application checkpoint info", Severity::Info),
        ("application memory warning", Severity::Warning),
        ("application runtime warning", Severity::Warning),
    ] {
        c.add(Facility::App, name, sev, false);
    }

    // ---- BGLMASTER: 2 fatal, 2 non-fatal ---------------------------------
    c.add(
        Facility::BglMaster,
        "bglmaster segmentation failure",
        Severity::Failure,
        true,
    );
    c.add(
        Facility::BglMaster,
        "bglmaster abort failure",
        Severity::Fatal,
        true,
    );
    c.add(
        Facility::BglMaster,
        "bglmaster restart info",
        Severity::Info,
        false,
    );
    c.add(
        Facility::BglMaster,
        "bglmaster heartbeat info",
        Severity::Info,
        false,
    );

    // ---- CMCS: 0 fatal, 4 non-fatal --------------------------------------
    c.add(Facility::Cmcs, "cmcs command info", Severity::Info, false);
    c.add(Facility::Cmcs, "cmcs exit info", Severity::Info, false);
    c.add(Facility::Cmcs, "cmcs startup info", Severity::Info, false);
    c.add(
        Facility::Cmcs,
        "cmcs polling warning",
        Severity::Warning,
        false,
    );

    // ---- DISCOVERY: 0 fatal, 24 non-fatal --------------------------------
    for comp in DISCOVERY_COMPONENTS {
        for issue in DISCOVERY_ISSUES {
            let sev = if issue.contains("error") {
                Severity::Error
            } else {
                Severity::Warning
            };
            c.add(Facility::Discovery, format!("{comp} {issue}"), sev, false);
        }
    }

    // ---- HARDWARE: 1 fatal, 12 non-fatal ---------------------------------
    c.add(
        Facility::Hardware,
        "midplane power failure",
        Severity::Fatal,
        true,
    );
    for (name, sev) in [
        ("midplane service warning", Severity::Warning),
        ("midplane switch error", Severity::Error),
        ("fan speed warning", Severity::Warning),
        ("power supply warning", Severity::Warning),
        ("clock signal warning", Severity::Warning),
        ("temperature sensor warning", Severity::Warning),
        ("voltage rail warning", Severity::Warning),
        ("bulk power error", Severity::Error),
        ("midplane service card error", Severity::Error),
        ("cable connection warning", Severity::Warning),
        ("hardware replace info", Severity::Info),
        ("midplane init info", Severity::Info),
    ] {
        c.add(Facility::Hardware, name, sev, false);
    }

    // ---- KERNEL: 46 fatal, 90 non-fatal ----------------------------------
    for sub in KERNEL_FATAL_SUBSYSTEMS {
        c.add(
            Facility::Kernel,
            format!("{sub} failure"),
            Severity::Fatal,
            true,
        );
        c.add(
            Facility::Kernel,
            format!("uncorrectable {sub} error"),
            Severity::Failure,
            true,
        );
    }
    for (i, sub) in KERNEL_NONFATAL_SUBSYSTEMS.iter().enumerate() {
        c.add(
            Facility::Kernel,
            format!("{sub} warning"),
            Severity::Warning,
            false,
        );
        // A few correctable-error types are logged FATAL though they are
        // recoverable — the "fake fatal" population of the raw logs.
        let sev = if i % 10 == 0 {
            Severity::Fatal
        } else {
            Severity::Severe
        };
        c.add(
            Facility::Kernel,
            format!("correctable {sub} error"),
            sev,
            false,
        );
        c.add(
            Facility::Kernel,
            format!("{sub} info"),
            Severity::Info,
            false,
        );
    }

    // ---- LINKCARD: 1 fatal, 0 non-fatal ----------------------------------
    c.add(
        Facility::LinkCard,
        "linkcard failure",
        Severity::Fatal,
        true,
    );

    // ---- MMCS: 0 fatal, 5 non-fatal --------------------------------------
    c.add(
        Facility::Mmcs,
        "mmcs control network error",
        Severity::Error,
        false,
    );
    c.add(
        Facility::Mmcs,
        "mmcs command warning",
        Severity::Warning,
        false,
    );
    c.add(Facility::Mmcs, "mmcs db info", Severity::Info, false);
    c.add(Facility::Mmcs, "mmcs polling info", Severity::Info, false);
    c.add(
        Facility::Mmcs,
        "mmcs connection warning",
        Severity::Warning,
        false,
    );

    // ---- MONITOR: 9 fatal, 5 non-fatal -----------------------------------
    for name in [
        "node card temperature failure",
        "ambient temperature failure",
        "fan failure",
        "power module failure",
        "service card temperature failure",
        "link card temperature failure",
        "dc voltage failure",
        "ac power failure",
        "coolant flow failure",
    ] {
        c.add(Facility::Monitor, name, Severity::Fatal, true);
    }
    // "node card temperature warning" is another classic fake fatal.
    c.add(
        Facility::Monitor,
        "node card temperature warning",
        Severity::Fatal,
        false,
    );
    for (name, sev) in [
        ("fan speed info", Severity::Info),
        ("power consumption info", Severity::Info),
        ("humidity warning", Severity::Warning),
        ("monitor heartbeat info", Severity::Info),
    ] {
        c.add(Facility::Monitor, name, sev, false);
    }

    // ---- SERV_NET: 0 fatal, 1 non-fatal ----------------------------------
    c.add(
        Facility::ServNet,
        "system operation error",
        Severity::Error,
        false,
    );

    debug_assert_eq!(c.len(), 219);
    debug_assert_eq!(c.fatal_count(), 69);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts_exact() {
        let c = standard_catalog();
        assert_eq!(c.len(), 219);
        assert_eq!(c.fatal_count(), 69);
        let expected: [(Facility, usize, usize); 10] = [
            (Facility::App, 10, 7),
            (Facility::BglMaster, 2, 2),
            (Facility::Cmcs, 0, 4),
            (Facility::Discovery, 0, 24),
            (Facility::Hardware, 1, 12),
            (Facility::Kernel, 46, 90),
            (Facility::LinkCard, 1, 0),
            (Facility::Mmcs, 0, 5),
            (Facility::Monitor, 9, 5),
            (Facility::ServNet, 0, 1),
        ];
        for (fac, fatal, nonfatal) in expected {
            assert_eq!(c.facility_counts(fac), (fatal, nonfatal), "{fac}");
        }
    }

    #[test]
    fn has_fake_fatals() {
        let c = standard_catalog();
        let fakes: Vec<_> = c.iter().filter(|d| d.is_fake_fatal()).collect();
        assert!(!fakes.is_empty(), "catalog must contain fake fatal types");
        // The canonical example from the paper's discussion.
        assert!(fakes
            .iter()
            .any(|d| d.name == "node card temperature warning"));
        // Fake fatals never count as fatal.
        for d in &fakes {
            assert!(!d.fatal);
        }
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let a = standard_catalog();
        let b = standard_catalog();
        for (da, db) in a.iter().zip(b.iter()) {
            assert_eq!(da, db);
        }
        for (i, d) in a.iter().enumerate() {
            assert_eq!(d.id.index(), i);
        }
    }

    #[test]
    fn lookup_by_name_works() {
        let c = standard_catalog();
        let id = c
            .lookup(Facility::Kernel, "torus failure")
            .expect("torus failure");
        assert!(c.is_fatal(id));
        let id = c
            .lookup(Facility::Cmcs, "cmcs exit info")
            .expect("cmcs exit info");
        assert!(!c.is_fatal(id));
    }
}
