//! # bgl-sim — synthetic Blue Gene/L RAS log generator
//!
//! The paper evaluates on production RAS logs from the ANL and SDSC Blue
//! Gene/L machines. Those logs are not publicly redistributable, so this
//! crate synthesizes logs with the same *statistical structure*, driving
//! every code path the real logs exercise:
//!
//! * the real packaging hierarchy ([`topology`]) and a job-scheduler model
//!   ([`jobs`]) so events carry realistic `Location` and `Job ID` fields;
//! * the standard 219-type event catalog ([`catalog`]) with the exact
//!   fatal/non-fatal per-facility counts of Table 3, including "fake
//!   fatal" types whose logged severity overstates their impact;
//! * heavy-tailed fatal arrival processes (Weibull, shape < 1) with burst
//!   cascades — the temporal correlation of Figs. 4–5 ([`faults`]);
//! * hidden ground-truth *precursor rules*: a configurable fraction of
//!   fatal events is preceded by correlated non-fatal events within the
//!   rule-generation window, the signal the association-rule learner must
//!   find ([`cascade`]); the rest arrive unheralded (the paper observes up
//!   to 75 % of fatals have no precursor);
//! * slow concept drift plus an optional mid-life reconfiguration that
//!   rewrites most rules at once — the regime change SDSC underwent near
//!   week 62 ([`regime`]);
//! * per-chip duplicated reporting and polling-agent re-reports
//!   ([`reporting`]), so the preprocessing filter has real work (~98 %
//!   compression at a 300 s threshold, as in Table 4);
//! * facility-dependent background noise including ANL-style
//!   machine-check storms ([`noise`]).
//!
//! Generation is fully deterministic given a seed, and per-week streams are
//! independently addressable so online-prediction examples can stream weeks
//! without materializing whole logs.

pub mod cascade;
pub mod catalog;
pub mod corruption;
pub mod faults;
pub mod fleet;
pub mod generator;
pub mod jobs;
pub mod noise;
pub mod presets;
pub mod regime;
pub mod reporting;
pub mod topology;

pub use catalog::standard_catalog;
pub use corruption::{corrupt_week, CorruptionPlan, CorruptionReport};
pub use fleet::{DomainOutage, FleetChaosPlan, FleetGenerator, FleetPreset, ShardFault};
pub use generator::{GeneratedLog, Generator, GroundTruth};
pub use presets::SystemPreset;
pub use topology::{FailureDomain, FleetTopology, Topology};
