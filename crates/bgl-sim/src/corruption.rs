//! Deterministic fault injection for generated log streams.
//!
//! Production RAS streams are hostile input: collector crashes truncate
//! lines mid-record, flaky transports garble bytes and drop fields, node
//! clocks skew, delivery reorders events, and polling agents flood
//! duplicates. This module corrupts a generated week into the *delivery*
//! stream an ingest pipeline would actually see, so the resilient reader
//! and reorder buffer can be exercised under controlled, reproducible
//! damage.
//!
//! Corruption happens in two composable stages, each rate-parameterized by
//! a [`CorruptionPlan`]:
//!
//! * **event stage** (before serialization): clock skew, bounded
//!   out-of-order delivery, duplicate floods;
//! * **line stage** (after serialization): truncated lines, garbled bytes,
//!   dropped fields, injected garbage lines.
//!
//! Everything is deterministic in `(plan.seed, week)`, mirroring
//! [`Generator::week_events`](crate::generator::Generator::week_events).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use raslog::{Duration, RasEvent, Timestamp};

/// Rates and bounds for every corruptor. All rates are probabilities in
/// `[0, 1]`; a rate of zero disables that corruptor.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionPlan {
    /// Seed for the corruption RNG (independent of the generator seed).
    pub seed: u64,
    /// Chance a line is chopped at a random offset (collector crash).
    pub truncate_rate: f64,
    /// Chance a line has a run of bytes overwritten with garbage.
    pub garble_rate: f64,
    /// Chance a line loses one of its leading fields (transport bug).
    pub drop_field_rate: f64,
    /// Chance an unparseable junk line is injected after a record.
    pub garbage_rate: f64,
    /// Chance a record's timestamp is skewed by up to ±[`max_skew`].
    ///
    /// [`max_skew`]: CorruptionPlan::max_skew
    pub clock_skew_rate: f64,
    /// Largest clock skew in either direction.
    pub max_skew: Duration,
    /// Chance a record is delivered late, displaced forward in the stream.
    pub reorder_rate: f64,
    /// Largest delivery delay for a reordered record.
    pub reorder_horizon: Duration,
    /// Chance a record is re-delivered one or more extra times.
    pub duplicate_rate: f64,
    /// Largest number of extra copies per duplicated record.
    pub max_duplicates: usize,
}

impl CorruptionPlan {
    /// A plan that corrupts nothing (the identity transport).
    pub fn clean(seed: u64) -> Self {
        CorruptionPlan {
            seed,
            truncate_rate: 0.0,
            garble_rate: 0.0,
            drop_field_rate: 0.0,
            garbage_rate: 0.0,
            clock_skew_rate: 0.0,
            max_skew: Duration::from_secs(30),
            reorder_rate: 0.0,
            reorder_horizon: Duration::from_secs(120),
            duplicate_rate: 0.0,
            max_duplicates: 3,
        }
    }

    /// A plan applying every corruptor at the same `rate`, with default
    /// bounds (30 s skew, 120 s reorder horizon, ≤ 3 extra duplicates).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        CorruptionPlan {
            truncate_rate: rate,
            garble_rate: rate,
            drop_field_rate: rate,
            garbage_rate: rate,
            clock_skew_rate: rate,
            reorder_rate: rate,
            duplicate_rate: rate,
            ..CorruptionPlan::clean(seed)
        }
    }

    /// The widest time displacement the plan can introduce: late delivery
    /// plus clock skew. An ingest reorder horizon at least this wide
    /// re-sequences every surviving record.
    pub fn max_displacement(&self) -> Duration {
        Duration(self.reorder_horizon.millis() + self.max_skew.millis())
    }
}

/// Counters describing what one corruption pass actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorruptionReport {
    /// Records fed in.
    pub input_events: usize,
    /// Lines chopped short.
    pub truncated: usize,
    /// Lines with garbled bytes.
    pub garbled: usize,
    /// Lines that lost a field.
    pub dropped_fields: usize,
    /// Junk lines injected.
    pub garbage_lines: usize,
    /// Records with a skewed timestamp.
    pub skewed: usize,
    /// Records displaced in delivery order.
    pub reordered: usize,
    /// Extra duplicate copies injected.
    pub duplicated: usize,
    /// Total lines emitted.
    pub output_lines: usize,
}

impl CorruptionReport {
    /// Accumulates another pass (for multi-week sweeps).
    pub fn merge(&mut self, other: &CorruptionReport) {
        self.input_events += other.input_events;
        self.truncated += other.truncated;
        self.garbled += other.garbled;
        self.dropped_fields += other.dropped_fields;
        self.garbage_lines += other.garbage_lines;
        self.skewed += other.skewed;
        self.reordered += other.reordered;
        self.duplicated += other.duplicated;
        self.output_lines += other.output_lines;
    }

    /// Lines damaged at the text layer (candidates for parse failure).
    pub fn damaged_lines(&self) -> usize {
        self.truncated + self.garbled + self.dropped_fields + self.garbage_lines
    }
}

/// One record queued for delivery: the delivery key orders the output
/// stream, independently of the (possibly skewed) record timestamp.
struct Delivery {
    deliver_at: Timestamp,
    seq: u64,
    event: RasEvent,
}

/// Corrupts one week of generated records into delivery-order log lines.
///
/// Deterministic in `(plan.seed, week)`: the same plan applied to the same
/// week always produces the same byte stream, so chaos experiments are
/// exactly reproducible.
pub fn corrupt_week(
    events: &[RasEvent],
    plan: &CorruptionPlan,
    week: i64,
) -> (Vec<String>, CorruptionReport) {
    let mut rng =
        StdRng::seed_from_u64(plan.seed ^ (week as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut report = CorruptionReport {
        input_events: events.len(),
        ..CorruptionReport::default()
    };

    // Event stage: skew clocks, delay deliveries, flood duplicates.
    let mut queue: Vec<Delivery> = Vec::with_capacity(events.len());
    let mut seq = 0u64;
    for ev in events {
        let mut ev = ev.clone();
        if plan.clock_skew_rate > 0.0 && rng.gen_bool(plan.clock_skew_rate) {
            let skew = rng.gen_range(-plan.max_skew.millis()..=plan.max_skew.millis());
            ev.time = Timestamp((ev.time.millis() + skew).max(0));
            report.skewed += 1;
        }
        let mut deliver_at = ev.time;
        if plan.reorder_rate > 0.0 && rng.gen_bool(plan.reorder_rate) {
            deliver_at = deliver_at + Duration(rng.gen_range(0..=plan.reorder_horizon.millis()));
            report.reordered += 1;
        }
        if plan.duplicate_rate > 0.0 && plan.max_duplicates > 0 && rng.gen_bool(plan.duplicate_rate)
        {
            let copies = rng.gen_range(1..=plan.max_duplicates);
            for _ in 0..copies {
                let lag = Duration(rng.gen_range(0..=plan.reorder_horizon.millis()));
                queue.push(Delivery {
                    deliver_at: deliver_at + lag,
                    seq: {
                        seq += 1;
                        seq
                    },
                    event: ev.clone(),
                });
            }
            report.duplicated += copies;
        }
        queue.push(Delivery {
            deliver_at,
            seq: {
                seq += 1;
                seq
            },
            event: ev,
        });
    }
    queue.sort_by_key(|d| (d.deliver_at, d.seq));

    // Line stage: serialize in delivery order, then damage the text.
    let mut lines = Vec::with_capacity(queue.len());
    for d in &queue {
        let mut line = raslog::io::format_line(&d.event);
        if plan.drop_field_rate > 0.0 && rng.gen_bool(plan.drop_field_rate) {
            line = drop_field(&line, &mut rng);
            report.dropped_fields += 1;
        }
        if plan.truncate_rate > 0.0 && rng.gen_bool(plan.truncate_rate) && line.len() > 1 {
            let cut = rng.gen_range(1..line.len());
            line = line.chars().take(cut).collect();
            report.truncated += 1;
        }
        if plan.garble_rate > 0.0 && rng.gen_bool(plan.garble_rate) && !line.is_empty() {
            line = garble(&line, &mut rng);
            report.garbled += 1;
        }
        lines.push(line);
        if plan.garbage_rate > 0.0 && rng.gen_bool(plan.garbage_rate) {
            lines.push(garbage_line(&mut rng));
            report.garbage_lines += 1;
        }
    }
    report.output_lines = lines.len();
    (lines, report)
}

/// Removes one of the leading pipe-separated fields (never the trailing
/// entry data, which legitimately contains pipes).
fn drop_field(line: &str, rng: &mut StdRng) -> String {
    let fields: Vec<&str> = line.splitn(8, '|').collect();
    if fields.len() < 2 {
        return line.to_string();
    }
    let victim = rng.gen_range(0..fields.len() - 1);
    fields
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != victim)
        .map(|(_, f)| *f)
        .collect::<Vec<_>>()
        .join("|")
}

/// Overwrites a short run of characters with random printable bytes.
fn garble(line: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = line.chars().collect();
    let run = rng.gen_range(1..=8.min(chars.len()));
    let start = rng.gen_range(0..=chars.len() - run);
    for c in chars.iter_mut().skip(start).take(run) {
        *c = rng.gen_range(33u8..127) as char;
    }
    chars.into_iter().collect()
}

/// An unparseable junk line, as left behind by a crashed writer.
fn garbage_line(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..60usize);
    (0..len)
        .map(|_| rng.gen_range(32u8..127) as char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::Generator;
    use crate::presets::SystemPreset;
    use raslog::io::parse_line;

    fn sample_week() -> Vec<RasEvent> {
        let g = Generator::new(
            SystemPreset::anl().with_weeks(1).with_volume_scale(0.02),
            5,
        );
        g.week_events(0).0
    }

    #[test]
    fn clean_plan_is_identity() {
        let events = sample_week();
        let (lines, report) = corrupt_week(&events, &CorruptionPlan::clean(1), 0);
        assert_eq!(lines.len(), events.len());
        assert_eq!(report.damaged_lines(), 0);
        assert_eq!(report.duplicated, 0);
        for (line, ev) in lines.iter().zip(&events) {
            assert_eq!(&parse_line(line).unwrap(), ev);
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let events = sample_week();
        let plan = CorruptionPlan::uniform(9, 0.1);
        let (a, ra) = corrupt_week(&events, &plan, 0);
        let (b, rb) = corrupt_week(&events, &plan, 0);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        // A different seed produces different damage.
        let (c, _) = corrupt_week(&events, &CorruptionPlan::uniform(10, 0.1), 0);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_plan_exercises_every_corruptor() {
        let events = sample_week();
        let (lines, report) = corrupt_week(&events, &CorruptionPlan::uniform(3, 0.2), 0);
        assert!(report.truncated > 0, "{report:?}");
        assert!(report.garbled > 0, "{report:?}");
        assert!(report.dropped_fields > 0, "{report:?}");
        assert!(report.garbage_lines > 0, "{report:?}");
        assert!(report.skewed > 0, "{report:?}");
        assert!(report.reordered > 0, "{report:?}");
        assert!(report.duplicated > 0, "{report:?}");
        assert_eq!(lines.len(), report.output_lines);
        assert_eq!(
            lines.len(),
            events.len() + report.duplicated + report.garbage_lines
        );
        // Some lines must now fail to parse…
        let bad = lines.iter().filter(|l| parse_line(l).is_err()).count();
        assert!(bad > 0);
        // …but most survive at a 20 % per-corruptor rate.
        assert!(bad < lines.len());
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let events = sample_week();
        let plan = CorruptionPlan {
            reorder_rate: 0.3,
            ..CorruptionPlan::clean(4)
        };
        let (lines, report) = corrupt_week(&events, &plan, 0);
        assert!(report.reordered > 0);
        let bound = plan.max_displacement().millis();
        let mut running_max = i64::MIN;
        for line in &lines {
            let t = parse_line(line).unwrap().time.millis();
            running_max = running_max.max(t);
            assert!(
                running_max - t <= bound,
                "record {}ms behind the stream head exceeds the {}ms bound",
                running_max - t,
                bound
            );
        }
    }

    #[test]
    fn duplicates_are_exact_copies() {
        let events = sample_week();
        let plan = CorruptionPlan {
            duplicate_rate: 0.5,
            ..CorruptionPlan::clean(8)
        };
        let (lines, report) = corrupt_week(&events, &plan, 0);
        assert!(report.duplicated > 0);
        let mut parsed: Vec<RasEvent> = lines.iter().map(|l| parse_line(l).unwrap()).collect();
        parsed.sort_by_key(|e| (e.time, e.record_id));
        parsed.dedup();
        assert_eq!(parsed.len(), events.len(), "dedup recovers the original");
    }

    #[test]
    fn reports_merge() {
        let events = sample_week();
        let plan = CorruptionPlan::uniform(2, 0.1);
        let (_, a) = corrupt_week(&events, &plan, 0);
        let mut total = a;
        total.merge(&a);
        assert_eq!(total.input_events, 2 * a.input_events);
        assert_eq!(total.output_lines, 2 * a.output_lines);
    }
}
