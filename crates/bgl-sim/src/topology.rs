//! Machine topology: how many racks, midplanes, cards, chips and I/O nodes.

use rand::Rng;
use raslog::Location;
use serde::{Deserialize, Serialize};

/// Fixed Blue Gene/L packaging constants.
pub const MIDPLANES_PER_RACK: u8 = 2;
/// Node cards per midplane.
pub const NODE_CARDS_PER_MIDPLANE: u8 = 16;
/// Compute cards per node card.
pub const COMPUTE_CARDS_PER_NODE_CARD: u8 = 16;
/// Compute chips per compute card.
pub const CHIPS_PER_COMPUTE_CARD: u8 = 2;
/// Link cards per midplane.
pub const LINK_CARDS_PER_MIDPLANE: u8 = 4;

/// The size of one machine installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of racks (ANL: 1, SDSC: 3).
    pub racks: u8,
    /// I/O nodes per midplane (ANL: 16, SDSC: 64).
    pub io_nodes_per_midplane: u8,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    /// Panics when `racks == 0`.
    pub fn new(racks: u8, io_nodes_per_midplane: u8) -> Self {
        assert!(racks > 0, "need at least one rack");
        Topology {
            racks,
            io_nodes_per_midplane,
        }
    }

    /// Total midplanes.
    pub fn midplanes(&self) -> u32 {
        self.racks as u32 * MIDPLANES_PER_RACK as u32
    }

    /// Total compute chips (= dual-core compute nodes).
    pub fn chips(&self) -> u32 {
        self.midplanes()
            * NODE_CARDS_PER_MIDPLANE as u32
            * COMPUTE_CARDS_PER_NODE_CARD as u32
            * CHIPS_PER_COMPUTE_CARD as u32
    }

    /// Total I/O nodes.
    pub fn io_nodes(&self) -> u32 {
        self.midplanes() * self.io_nodes_per_midplane as u32
    }

    /// Total node cards.
    pub fn node_cards(&self) -> u32 {
        self.midplanes() * NODE_CARDS_PER_MIDPLANE as u32
    }

    /// A uniformly random compute-chip location.
    pub fn random_chip<R: Rng>(&self, rng: &mut R) -> Location {
        Location::Chip {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
            node_card: rng.gen_range(0..NODE_CARDS_PER_MIDPLANE),
            compute_card: rng.gen_range(0..COMPUTE_CARDS_PER_NODE_CARD),
            chip: rng.gen_range(0..CHIPS_PER_COMPUTE_CARD),
        }
    }

    /// A uniformly random node-card location.
    pub fn random_node_card<R: Rng>(&self, rng: &mut R) -> Location {
        Location::NodeCard {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
            node_card: rng.gen_range(0..NODE_CARDS_PER_MIDPLANE),
        }
    }

    /// A uniformly random midplane location.
    pub fn random_midplane<R: Rng>(&self, rng: &mut R) -> Location {
        Location::Midplane {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
        }
    }

    /// A uniformly random service-card location.
    pub fn random_service_card<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::ServiceCard { rack, midplane }
    }

    /// A uniformly random link-card location.
    pub fn random_link_card<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::LinkCard {
            rack,
            midplane,
            link: rng.gen_range(0..LINK_CARDS_PER_MIDPLANE),
        }
    }

    /// A uniformly random I/O-node location.
    pub fn random_io_node<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::IoNode {
            rack,
            midplane,
            io: rng.gen_range(0..self.io_nodes_per_midplane),
        }
    }

    /// A random chip *within* the given node card (used for duplicate
    /// reports from siblings of a failing chip).
    pub fn random_chip_in_node_card<R: Rng>(&self, card: Location, rng: &mut R) -> Location {
        match card {
            Location::NodeCard {
                rack,
                midplane,
                node_card,
            } => Location::Chip {
                rack,
                midplane,
                node_card,
                compute_card: rng.gen_range(0..COMPUTE_CARDS_PER_NODE_CARD),
                chip: rng.gen_range(0..CHIPS_PER_COMPUTE_CARD),
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anl_and_sdsc_sizes() {
        // ANL: one rack, 1,024 dual-core compute nodes, 32 I/O nodes.
        let anl = Topology::new(1, 16);
        assert_eq!(anl.chips(), 1024);
        assert_eq!(anl.io_nodes(), 32);
        // SDSC: three racks, 3,072 compute nodes, 384 I/O nodes.
        let sdsc = Topology::new(3, 64);
        assert_eq!(sdsc.chips(), 3072);
        assert_eq!(sdsc.io_nodes(), 384);
        assert_eq!(sdsc.node_cards(), 96);
    }

    #[test]
    fn random_locations_are_in_bounds() {
        let t = Topology::new(3, 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let chip = t.random_chip(&mut rng);
            assert!(chip.rack().unwrap() < 3);
            let io = t.random_io_node(&mut rng);
            if let Location::IoNode { io, .. } = io {
                assert!(io < 64);
            } else {
                panic!("not an io node");
            }
        }
    }

    #[test]
    fn chip_in_node_card_stays_on_card() {
        let t = Topology::new(1, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let card = Location::NodeCard {
            rack: 0,
            midplane: 1,
            node_card: 7,
        };
        for _ in 0..100 {
            let chip = t.random_chip_in_node_card(card, &mut rng);
            assert!(card.contains(&chip), "{card} !⊇ {chip}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        Topology::new(0, 16);
    }
}
