//! Machine topology: how many racks, midplanes, cards, chips and I/O nodes.

use rand::Rng;
use raslog::Location;
use serde::{Deserialize, Serialize};

/// Fixed Blue Gene/L packaging constants.
pub const MIDPLANES_PER_RACK: u8 = 2;
/// Node cards per midplane.
pub const NODE_CARDS_PER_MIDPLANE: u8 = 16;
/// Compute cards per node card.
pub const COMPUTE_CARDS_PER_NODE_CARD: u8 = 16;
/// Compute chips per compute card.
pub const CHIPS_PER_COMPUTE_CARD: u8 = 2;
/// Link cards per midplane.
pub const LINK_CARDS_PER_MIDPLANE: u8 = 4;

/// The size of one machine installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// Number of racks (ANL: 1, SDSC: 3).
    pub racks: u8,
    /// I/O nodes per midplane (ANL: 16, SDSC: 64).
    pub io_nodes_per_midplane: u8,
}

impl Topology {
    /// Creates a topology.
    ///
    /// # Panics
    /// Panics when `racks == 0`.
    pub fn new(racks: u8, io_nodes_per_midplane: u8) -> Self {
        assert!(racks > 0, "need at least one rack");
        Topology {
            racks,
            io_nodes_per_midplane,
        }
    }

    /// Total midplanes.
    pub fn midplanes(&self) -> u32 {
        self.racks as u32 * MIDPLANES_PER_RACK as u32
    }

    /// Total compute chips (= dual-core compute nodes).
    pub fn chips(&self) -> u32 {
        self.midplanes()
            * NODE_CARDS_PER_MIDPLANE as u32
            * COMPUTE_CARDS_PER_NODE_CARD as u32
            * CHIPS_PER_COMPUTE_CARD as u32
    }

    /// Total I/O nodes.
    pub fn io_nodes(&self) -> u32 {
        self.midplanes() * self.io_nodes_per_midplane as u32
    }

    /// Total node cards.
    pub fn node_cards(&self) -> u32 {
        self.midplanes() * NODE_CARDS_PER_MIDPLANE as u32
    }

    /// A uniformly random compute-chip location.
    pub fn random_chip<R: Rng>(&self, rng: &mut R) -> Location {
        Location::Chip {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
            node_card: rng.gen_range(0..NODE_CARDS_PER_MIDPLANE),
            compute_card: rng.gen_range(0..COMPUTE_CARDS_PER_NODE_CARD),
            chip: rng.gen_range(0..CHIPS_PER_COMPUTE_CARD),
        }
    }

    /// A uniformly random node-card location.
    pub fn random_node_card<R: Rng>(&self, rng: &mut R) -> Location {
        Location::NodeCard {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
            node_card: rng.gen_range(0..NODE_CARDS_PER_MIDPLANE),
        }
    }

    /// A uniformly random midplane location.
    pub fn random_midplane<R: Rng>(&self, rng: &mut R) -> Location {
        Location::Midplane {
            rack: rng.gen_range(0..self.racks),
            midplane: rng.gen_range(0..MIDPLANES_PER_RACK),
        }
    }

    /// A uniformly random service-card location.
    pub fn random_service_card<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::ServiceCard { rack, midplane }
    }

    /// A uniformly random link-card location.
    pub fn random_link_card<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::LinkCard {
            rack,
            midplane,
            link: rng.gen_range(0..LINK_CARDS_PER_MIDPLANE),
        }
    }

    /// A uniformly random I/O-node location.
    pub fn random_io_node<R: Rng>(&self, rng: &mut R) -> Location {
        let Location::Midplane { rack, midplane } = self.random_midplane(rng) else {
            unreachable!()
        };
        Location::IoNode {
            rack,
            midplane,
            io: rng.gen_range(0..self.io_nodes_per_midplane),
        }
    }

    /// A random chip *within* the given node card (used for duplicate
    /// reports from siblings of a failing chip).
    pub fn random_chip_in_node_card<R: Rng>(&self, card: Location, rng: &mut R) -> Location {
        match card {
            Location::NodeCard {
                rack,
                midplane,
                node_card,
            } => Location::Chip {
                rack,
                midplane,
                node_card,
                compute_card: rng.gen_range(0..COMPUTE_CARDS_PER_NODE_CARD),
                chip: rng.gen_range(0..CHIPS_PER_COMPUTE_CARD),
            },
            other => other,
        }
    }
}

/// A datacenter-level shared dependency whose failure takes out every
/// machine wired to it at once. These are the correlated-failure groups
/// the fleet generator injects outages against; they sit *above* the
/// per-machine Blue Gene packaging hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureDomain {
    /// A power-distribution unit feeding a contiguous group of machines.
    Pdu(u16),
    /// A top-of-row network switch.
    Switch(u16),
    /// A cooling loop / CRAC unit.
    Cooling(u16),
}

impl core::fmt::Display for FailureDomain {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FailureDomain::Pdu(i) => write!(f, "pdu-{i}"),
            FailureDomain::Switch(i) => write!(f, "switch-{i}"),
            FailureDomain::Cooling(i) => write!(f, "cooling-{i}"),
        }
    }
}

/// How a fleet of simulated machines maps onto shared failure domains.
///
/// Machines are indexed `0..machines`. Each maps to exactly one PDU, one
/// switch and one cooling loop; the three groupings use different strides
/// so the domains interleave (neighbours on a PDU are usually not
/// neighbours on a switch), which is what makes domain outages a
/// different signal from simple machine-range outages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTopology {
    /// Number of simulated machines in the fleet.
    pub machines: u32,
    /// Machines per power-distribution unit.
    pub machines_per_pdu: u32,
    /// Machines per top-of-row switch.
    pub machines_per_switch: u32,
    /// Machines per cooling loop.
    pub machines_per_cooling: u32,
}

impl FleetTopology {
    /// A fleet with the default domain sizes: 20 machines per PDU,
    /// 48 per switch, 125 per cooling loop.
    ///
    /// # Panics
    /// Panics when `machines == 0`.
    pub fn new(machines: u32) -> Self {
        assert!(machines > 0, "need at least one machine");
        FleetTopology {
            machines,
            machines_per_pdu: 20,
            machines_per_switch: 48,
            machines_per_cooling: 125,
        }
    }

    /// The PDU feeding `machine`.
    pub fn pdu_of(&self, machine: u32) -> FailureDomain {
        FailureDomain::Pdu((machine / self.machines_per_pdu) as u16)
    }

    /// The switch serving `machine`. Offset by a half-group so switch
    /// membership does not coincide with PDU membership.
    pub fn switch_of(&self, machine: u32) -> FailureDomain {
        let shifted = (machine + self.machines_per_switch / 2) % self.machines;
        FailureDomain::Switch((shifted / self.machines_per_switch) as u16)
    }

    /// The cooling loop serving `machine`.
    pub fn cooling_of(&self, machine: u32) -> FailureDomain {
        FailureDomain::Cooling((machine / self.machines_per_cooling) as u16)
    }

    /// Whether `machine` belongs to `domain`.
    pub fn contains(&self, domain: FailureDomain, machine: u32) -> bool {
        match domain {
            FailureDomain::Pdu(_) => self.pdu_of(machine) == domain,
            FailureDomain::Switch(_) => self.switch_of(machine) == domain,
            FailureDomain::Cooling(_) => self.cooling_of(machine) == domain,
        }
    }

    /// Every machine wired to `domain`, in index order.
    pub fn machines_in(&self, domain: FailureDomain) -> Vec<u32> {
        (0..self.machines)
            .filter(|&m| self.contains(domain, m))
            .collect()
    }

    /// All domains with at least one member, in a stable order.
    pub fn domains(&self) -> Vec<FailureDomain> {
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for m in 0..self.machines {
            for d in [self.pdu_of(m), self.switch_of(m), self.cooling_of(m)] {
                if seen.insert(d) {
                    out.push(d);
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anl_and_sdsc_sizes() {
        // ANL: one rack, 1,024 dual-core compute nodes, 32 I/O nodes.
        let anl = Topology::new(1, 16);
        assert_eq!(anl.chips(), 1024);
        assert_eq!(anl.io_nodes(), 32);
        // SDSC: three racks, 3,072 compute nodes, 384 I/O nodes.
        let sdsc = Topology::new(3, 64);
        assert_eq!(sdsc.chips(), 3072);
        assert_eq!(sdsc.io_nodes(), 384);
        assert_eq!(sdsc.node_cards(), 96);
    }

    #[test]
    fn random_locations_are_in_bounds() {
        let t = Topology::new(3, 64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let chip = t.random_chip(&mut rng);
            assert!(chip.rack().unwrap() < 3);
            let io = t.random_io_node(&mut rng);
            if let Location::IoNode { io, .. } = io {
                assert!(io < 64);
            } else {
                panic!("not an io node");
            }
        }
    }

    #[test]
    fn chip_in_node_card_stays_on_card() {
        let t = Topology::new(1, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let card = Location::NodeCard {
            rack: 0,
            midplane: 1,
            node_card: 7,
        };
        for _ in 0..100 {
            let chip = t.random_chip_in_node_card(card, &mut rng);
            assert!(card.contains(&chip), "{card} !⊇ {chip}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rack")]
    fn zero_racks_panics() {
        Topology::new(0, 16);
    }

    #[test]
    fn every_machine_has_all_three_domains() {
        let fleet = FleetTopology::new(1000);
        for m in 0..fleet.machines {
            assert!(fleet.contains(fleet.pdu_of(m), m));
            assert!(fleet.contains(fleet.switch_of(m), m));
            assert!(fleet.contains(fleet.cooling_of(m), m));
        }
    }

    #[test]
    fn domain_membership_is_a_partition_per_kind() {
        let fleet = FleetTopology::new(500);
        for kind in [
            FailureDomain::Pdu(0),
            FailureDomain::Switch(0),
            FailureDomain::Cooling(0),
        ] {
            let mut covered = vec![false; fleet.machines as usize];
            for d in fleet.domains() {
                if std::mem::discriminant(&d) != std::mem::discriminant(&kind) {
                    continue;
                }
                for m in fleet.machines_in(d) {
                    assert!(!covered[m as usize], "machine {m} in two {kind:?}-like domains");
                    covered[m as usize] = true;
                }
            }
            assert!(covered.iter().all(|&c| c), "partition misses machines");
        }
    }

    #[test]
    fn switch_groups_interleave_with_pdu_groups() {
        let fleet = FleetTopology::new(1000);
        // Two machines on the same PDU are not all on the same switch.
        let pdu0 = fleet.machines_in(FailureDomain::Pdu(0));
        let switches: std::collections::BTreeSet<_> =
            pdu0.iter().map(|&m| fleet.switch_of(m)).collect();
        assert!(!pdu0.is_empty());
        assert!(!switches.is_empty());
    }
}
