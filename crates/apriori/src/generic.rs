//! Classic Apriori: frequent itemsets and all-rules induction.

use crate::itemset::{
    is_normalized, is_subset_sorted, itemset_hash, join_step, normalize, Itemset,
};
use crate::Item;
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::HashMap;

/// Parallelize support counting only past this many candidate itemsets;
/// below it the Rayon dispatch overhead dominates.
pub(crate) const PAR_THRESHOLD: usize = 64;

/// Default shard count for partitioned candidate counting: one per
/// available core.
pub(crate) fn default_partitions() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Hash-partitioned candidate counting: candidates are sharded by
/// [`itemset_hash`] across `partitions` workers, each worker fills a
/// private `(candidate index, count)` table over its shard, and the
/// tables are merged once per pass by scattering into the output vector.
///
/// Every candidate is counted by exactly one worker with the same
/// `count_one` closure the serial path uses, so the returned counts —
/// and everything mined from them — are identical at every partition
/// count, including 1. Small candidate sets take the serial path
/// outright (the dispatch overhead dominates below
/// [`PAR_THRESHOLD`]).
pub(crate) fn count_sharded<I: Item>(
    candidates: &[Itemset<I>],
    partitions: usize,
    count_one: impl Fn(&Itemset<I>) -> usize + Sync,
) -> Vec<usize> {
    if candidates.len() < PAR_THRESHOLD || partitions <= 1 {
        return candidates.iter().map(&count_one).collect();
    }
    let mut shards: Vec<Vec<u32>> = vec![Vec::new(); partitions];
    for (i, cand) in candidates.iter().enumerate() {
        shards[(itemset_hash(cand) % partitions as u64) as usize].push(i as u32);
    }
    let tables: Vec<Vec<(u32, usize)>> = shards
        .par_iter()
        .map(|shard| {
            shard
                .iter()
                .map(|&i| (i, count_one(&candidates[i as usize])))
                .collect()
        })
        .collect();
    let mut counts = vec![0usize; candidates.len()];
    for table in tables {
        for (i, c) in table {
            counts[i as usize] = c;
        }
    }
    counts
}

/// A frequent itemset with its absolute support count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset<I> {
    /// The sorted items.
    pub items: Itemset<I>,
    /// Number of transactions containing all the items.
    pub count: usize,
}

impl<I> FrequentItemset<I> {
    /// Relative support given the transaction count.
    pub fn support(&self, n_transactions: usize) -> f64 {
        if n_transactions == 0 {
            0.0
        } else {
            self.count as f64 / n_transactions as f64
        }
    }
}

/// An association rule `antecedent → consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule<I> {
    /// Sorted antecedent itemset (non-empty).
    pub antecedent: Itemset<I>,
    /// Sorted consequent itemset (non-empty, disjoint from antecedent).
    pub consequent: Itemset<I>,
    /// Relative support of `antecedent ∪ consequent`.
    pub support: f64,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

fn count_candidates<I: Item>(
    candidates: &[Itemset<I>],
    transactions: &[Cow<'_, [I]>],
    partitions: usize,
) -> Vec<usize> {
    count_sharded(candidates, partitions, |cand: &Itemset<I>| {
        transactions
            .iter()
            .filter(|t| is_subset_sorted(cand, t))
            .count()
    })
}

/// Levelwise Apriori. Returns every itemset with relative support
/// `≥ min_support`, up to `max_len` items, sorted by `(len, items)`.
///
/// Transactions are normalized (sorted + deduplicated) internally.
/// Candidate counting is hash-partitioned across one worker per
/// available core; use [`frequent_itemsets_with_partitions`] to pin the
/// worker count.
///
/// # Panics
/// Panics when `min_support` is outside `(0, 1]` or `max_len == 0`.
pub fn frequent_itemsets<I: Item>(
    transactions: &[Vec<I>],
    min_support: f64,
    max_len: usize,
) -> Vec<FrequentItemset<I>> {
    frequent_itemsets_with_partitions(transactions, min_support, max_len, default_partitions())
}

/// [`frequent_itemsets`] with an explicit counting-partition count.
/// Output is identical at every `partitions` value (the parity suite
/// holds it to exact `Vec` equality, ordering included); the value only
/// controls how counting work spreads across workers.
pub fn frequent_itemsets_with_partitions<I: Item>(
    transactions: &[Vec<I>],
    min_support: f64,
    max_len: usize,
    partitions: usize,
) -> Vec<FrequentItemset<I>> {
    assert!(
        min_support > 0.0 && min_support <= 1.0,
        "min_support {min_support} outside (0,1]"
    );
    assert!(max_len > 0, "max_len must be positive");
    if transactions.is_empty() {
        return Vec::new();
    }
    // Fast path: retraining windows arrive pre-sorted and deduplicated,
    // so borrow those slices instead of cloning + re-sorting every one.
    let txs: Vec<Cow<'_, [I]>> = transactions
        .iter()
        .map(|t| {
            if is_normalized(t) {
                Cow::Borrowed(t.as_slice())
            } else {
                Cow::Owned(normalize(t.clone()))
            }
        })
        .collect();
    let n = txs.len();
    let min_count = (min_support * n as f64).ceil().max(1.0) as usize;

    // L1 from single-pass counting.
    let mut item_counts: HashMap<I, usize> = HashMap::new();
    for t in &txs {
        for &i in t.iter() {
            *item_counts.entry(i).or_insert(0) += 1;
        }
    }
    let mut level: Vec<FrequentItemset<I>> = item_counts
        .into_iter()
        .filter(|&(_, c)| c >= min_count)
        .map(|(i, count)| FrequentItemset {
            items: vec![i],
            count,
        })
        .collect();
    level.sort_by(|a, b| a.items.cmp(&b.items));

    let mut all = Vec::new();
    let mut k = 1;
    while !level.is_empty() && k < max_len {
        all.extend(level.iter().cloned());
        let sets: Vec<Itemset<I>> = level.iter().map(|f| f.items.clone()).collect();
        let candidates = join_step(&sets);
        let counts = count_candidates(&candidates, &txs, partitions);
        level = candidates
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c >= min_count)
            .map(|(items, count)| FrequentItemset { items, count })
            .collect();
        level.sort_by(|a, b| a.items.cmp(&b.items));
        k += 1;
    }
    all.extend(level);
    all
}

/// Induces every rule `X → Y` with `X ∪ Y` frequent, `X, Y` non-empty and
/// disjoint, and confidence `≥ min_confidence`.
///
/// Single-consequent rules only (`|Y| = 1`): that is the shape the failure
/// predictor consumes, and it keeps induction linear in the itemset size.
pub fn generate_rules<I: Item>(
    frequent: &[FrequentItemset<I>],
    n_transactions: usize,
    min_confidence: f64,
) -> Vec<AssociationRule<I>> {
    // Index support counts for denominator lookups.
    let index: HashMap<&[I], usize> = frequent
        .iter()
        .map(|f| (f.items.as_slice(), f.count))
        .collect();
    let mut rules = Vec::new();
    for f in frequent.iter().filter(|f| f.items.len() >= 2) {
        for skip in 0..f.items.len() {
            let consequent = vec![f.items[skip]];
            let antecedent: Vec<I> = f
                .items
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x)
                .collect();
            let Some(&ante_count) = index.get(antecedent.as_slice()) else {
                continue; // antecedent below threshold (can't happen for true Apriori output)
            };
            let confidence = f.count as f64 / ante_count as f64;
            if confidence >= min_confidence {
                rules.push(AssociationRule {
                    antecedent,
                    consequent,
                    support: f.count as f64 / n_transactions as f64,
                    confidence,
                });
            }
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Brute-force reference: enumerate all subsets of the item universe.
    fn brute_force_frequent(
        transactions: &[Vec<u32>],
        min_support: f64,
        max_len: usize,
    ) -> Vec<FrequentItemset<u32>> {
        let universe: Vec<u32> = {
            let mut u: Vec<u32> = transactions.iter().flatten().copied().collect();
            u.sort_unstable();
            u.dedup();
            u
        };
        let n = transactions.len();
        let min_count = (min_support * n as f64).ceil().max(1.0) as usize;
        let txs: Vec<Vec<u32>> = transactions.iter().map(|t| normalize(t.clone())).collect();
        let mut out = Vec::new();
        for mask in 1u64..(1 << universe.len()) {
            let items: Vec<u32> = universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &x)| x)
                .collect();
            if items.is_empty() || items.len() > max_len {
                continue;
            }
            let count = txs.iter().filter(|t| is_subset_sorted(&items, t)).count();
            if count >= min_count {
                out.push(FrequentItemset { items, count });
            }
        }
        out
    }

    fn tx_data() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3],
            vec![1, 2],
            vec![1, 3],
            vec![2, 3],
            vec![1, 2, 3, 4],
            vec![4],
        ]
    }

    #[test]
    fn matches_brute_force() {
        let txs = tx_data();
        for &ms in &[0.2, 0.34, 0.5, 0.9] {
            let mut fast = frequent_itemsets(&txs, ms, 4);
            let mut slow = brute_force_frequent(&txs, ms, 4);
            fast.sort_by(|a, b| a.items.cmp(&b.items));
            slow.sort_by(|a, b| a.items.cmp(&b.items));
            assert_eq!(fast, slow, "min_support = {ms}");
        }
    }

    #[test]
    fn supports_are_correct() {
        let txs = tx_data();
        let freq = frequent_itemsets(&txs, 0.5, 3);
        let by_items: HashMap<Vec<u32>, usize> =
            freq.iter().map(|f| (f.items.clone(), f.count)).collect();
        assert_eq!(by_items[&vec![1]], 4);
        assert_eq!(by_items[&vec![2]], 4);
        assert_eq!(by_items[&vec![1, 2]], 3);
        assert!((by_items[&vec![1, 2]] as f64 / 6.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_len_truncates() {
        let txs = tx_data();
        let freq = frequent_itemsets(&txs, 0.2, 2);
        assert!(freq.iter().all(|f| f.items.len() <= 2));
        let freq3 = frequent_itemsets(&txs, 0.2, 3);
        assert!(freq3.iter().any(|f| f.items.len() == 3));
    }

    #[test]
    fn prenormalized_and_messy_transactions_agree() {
        // Same transactions, one copy pre-normalized (borrow fast path),
        // one shuffled with duplicates (clone + normalize path): the
        // mined itemsets must be identical.
        let messy: Vec<Vec<u32>> = vec![
            vec![3, 1, 2, 1],
            vec![2, 1],
            vec![3, 1, 3],
            vec![3, 2],
            vec![4, 3, 2, 1],
            vec![4, 4],
        ];
        let clean: Vec<Vec<u32>> = messy.iter().map(|t| normalize(t.clone())).collect();
        for &ms in &[0.2, 0.5] {
            let mut a = frequent_itemsets(&messy, ms, 4);
            let mut b = frequent_itemsets(&clean, ms, 4);
            a.sort_by(|x, y| x.items.cmp(&y.items));
            b.sort_by(|x, y| x.items.cmp(&y.items));
            assert_eq!(a, b, "min_support = {ms}");
        }
    }

    #[test]
    fn duplicate_items_in_transaction_count_once() {
        let txs = vec![vec![1, 1, 1], vec![1, 2]];
        let freq = frequent_itemsets(&txs, 0.9, 2);
        let one = freq.iter().find(|f| f.items == vec![1]).unwrap();
        assert_eq!(one.count, 2);
    }

    #[test]
    fn rules_confidence() {
        let txs = tx_data();
        let freq = frequent_itemsets(&txs, 0.3, 3);
        let rules = generate_rules(&freq, txs.len(), 0.0);
        // {2,3} appears 3 times, {2} 4 times → conf({2}→{3}) = 0.75.
        let r = rules
            .iter()
            .find(|r| r.antecedent == vec![2] && r.consequent == vec![3])
            .unwrap();
        assert!((r.confidence - 0.75).abs() < 1e-12);
        assert!((r.support - 0.5).abs() < 1e-12);
        // min_confidence filters.
        let strict = generate_rules(&freq, txs.len(), 0.76);
        assert!(strict
            .iter()
            .all(|r| !(r.antecedent == vec![2] && r.consequent == vec![3])));
    }

    #[test]
    fn empty_inputs() {
        assert!(frequent_itemsets::<u32>(&[], 0.5, 3).is_empty());
        assert!(generate_rules::<u32>(&[], 0, 0.5).is_empty());
    }

    #[test]
    fn rules_are_single_consequent_and_disjoint() {
        let txs = tx_data();
        let freq = frequent_itemsets(&txs, 0.2, 4);
        for r in generate_rules(&freq, txs.len(), 0.1) {
            assert_eq!(r.consequent.len(), 1);
            assert!(!r.antecedent.is_empty());
            let a: HashSet<u32> = r.antecedent.iter().copied().collect();
            assert!(!a.contains(&r.consequent[0]));
            assert!(r.confidence > 0.0 && r.confidence <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_panics() {
        frequent_itemsets::<u32>(&[vec![1]], 0.0, 2);
    }

    #[test]
    fn partition_count_never_changes_output() {
        // Wide universe so candidate counts cross PAR_THRESHOLD and the
        // sharded path actually engages.
        let txs: Vec<Vec<u32>> = (0..40)
            .map(|i| (0..20).map(|j| (i + j * 3) % 25).collect())
            .collect();
        let reference = frequent_itemsets_with_partitions(&txs, 0.2, 3, 1);
        assert!(reference.len() >= PAR_THRESHOLD, "test must exercise sharding");
        for parts in [2, 3, 7, 16] {
            let got = frequent_itemsets_with_partitions(&txs, 0.2, 3, parts);
            assert_eq!(got, reference, "partitions = {parts}");
        }
        assert_eq!(frequent_itemsets(&txs, 0.2, 3), reference);
    }

    #[test]
    fn count_sharded_matches_serial_closure() {
        let candidates: Vec<Itemset<u32>> = (0..200u32).map(|i| vec![i, i + 1]).collect();
        let count_one = |c: &Itemset<u32>| (c[0] as usize) * 2 + 1;
        let serial: Vec<usize> = candidates.iter().map(count_one).collect();
        for parts in [1, 2, 5, 13] {
            assert_eq!(count_sharded(&candidates, parts, count_one), serial);
        }
    }
}
