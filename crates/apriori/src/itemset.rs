//! Sorted-vector itemsets and the Apriori candidate join.

use crate::Item;

/// An itemset represented as a sorted, deduplicated vector.
pub type Itemset<I> = Vec<I>;

/// Normalizes a collection of items into a sorted, deduplicated itemset.
pub fn normalize<I: Item>(mut items: Vec<I>) -> Itemset<I> {
    items.sort_unstable();
    items.dedup();
    items
}

/// `true` when the slice is already a valid itemset (strictly increasing,
/// hence sorted and deduplicated). Lets callers skip the clone + sort in
/// [`normalize`] for pre-normalized transaction windows.
pub fn is_normalized<I: Item>(items: &[I]) -> bool {
    items.windows(2).all(|w| w[0] < w[1])
}

/// FNV-1a, a fixed-key hasher: no per-process random state, so shard
/// assignment is identical on every run. Partitioned counting only uses
/// the hash to decide *which worker* counts a candidate — counts
/// themselves are partition-independent — but a deterministic hash keeps
/// scheduling reproducible and debuggable.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl core::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
        }
    }
}

/// Deterministic hash of an itemset, used to shard candidate counting
/// across workers (see `count_sharded` in the miners).
pub fn itemset_hash<I: Item>(items: &[I]) -> u64 {
    use core::hash::Hasher;
    let mut h = Fnv1a::default();
    for i in items {
        i.hash(&mut h);
    }
    h.finish()
}

/// `true` when sorted slice `needle` is a subset of sorted slice `haystack`
/// (two-pointer merge; O(|haystack|)).
pub fn is_subset_sorted<I: Item>(needle: &[I], haystack: &[I]) -> bool {
    let mut hi = haystack.iter();
    'outer: for n in needle {
        for h in hi.by_ref() {
            match h.cmp(n) {
                core::cmp::Ordering::Less => continue,
                core::cmp::Ordering::Equal => continue 'outer,
                core::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The Apriori join step: from the sorted list of frequent `k`-itemsets,
/// produce candidate `(k+1)`-itemsets by joining pairs that share their
/// first `k−1` items, then prune candidates with an infrequent `k`-subset.
///
/// `frequent` must be sorted lexicographically (as produced by the
/// levelwise loop).
pub fn join_step<I: Item>(frequent: &[Itemset<I>]) -> Vec<Itemset<I>> {
    let k = match frequent.first() {
        Some(f) => f.len(),
        None => return Vec::new(),
    };
    debug_assert!(frequent.iter().all(|f| f.len() == k));
    debug_assert!(
        frequent.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );

    let mut candidates = Vec::new();
    for i in 0..frequent.len() {
        for j in (i + 1)..frequent.len() {
            let (a, b) = (&frequent[i], &frequent[j]);
            if a[..k - 1] != b[..k - 1] {
                break; // sorted input: no later j can share the prefix
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            // Prune: every k-subset must be frequent.
            if all_subsets_frequent(&cand, frequent) {
                candidates.push(cand);
            }
        }
    }
    candidates
}

/// Checks that every `|cand|−1`-subset of `cand` appears in the sorted
/// `frequent` list (binary search per subset).
fn all_subsets_frequent<I: Item>(cand: &[I], frequent: &[Itemset<I>]) -> bool {
    let mut sub: Vec<I> = Vec::with_capacity(cand.len() - 1);
    for skip in 0..cand.len() {
        sub.clear();
        sub.extend(
            cand.iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &x)| x),
        );
        if frequent
            .binary_search_by(|f| f.as_slice().cmp(sub.as_slice()))
            .is_err()
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_checks() {
        assert!(is_subset_sorted::<u32>(&[], &[]));
        assert!(is_subset_sorted(&[], &[1, 2]));
        assert!(is_subset_sorted(&[2], &[1, 2, 3]));
        assert!(is_subset_sorted(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1, 4], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[0], &[1, 2, 3]));
        assert!(!is_subset_sorted(&[1], &[]));
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(normalize(vec![3, 1, 2, 1, 3]), vec![1, 2, 3]);
        assert_eq!(normalize(Vec::<u32>::new()), Vec::<u32>::new());
    }

    #[test]
    fn is_normalized_detects_sorted_deduped_slices() {
        assert!(is_normalized::<u32>(&[]));
        assert!(is_normalized(&[7u32]));
        assert!(is_normalized(&[1u32, 2, 5]));
        assert!(!is_normalized(&[2u32, 1])); // unsorted
        assert!(!is_normalized(&[1u32, 1, 2])); // duplicate
        // Agreement with normalize: a slice is normalized iff normalize
        // leaves it unchanged.
        for v in [vec![3u32, 1, 2], vec![1, 2, 3], vec![1, 1], vec![]] {
            assert_eq!(is_normalized(&v), normalize(v.clone()) == v);
        }
    }

    #[test]
    fn join_produces_pruned_candidates() {
        // Frequent 2-itemsets over {1,2,3}: all pairs → candidate {1,2,3}.
        let l2 = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        assert_eq!(join_step(&l2), vec![vec![1, 2, 3]]);

        // Missing {2,3} → {1,2,3} must be pruned.
        let l2 = vec![vec![1, 2], vec![1, 3]];
        assert!(join_step(&l2).is_empty());
    }

    #[test]
    fn join_from_singletons() {
        let l1 = vec![vec![1], vec![2], vec![4]];
        assert_eq!(join_step(&l1), vec![vec![1, 2], vec![1, 4], vec![2, 4]]);
        assert!(join_step::<u32>(&[]).is_empty());
    }
}
