//! # apriori — association-rule mining
//!
//! A from-scratch implementation of the Apriori frequent-itemset algorithm
//! (Agrawal & Srikant) plus the *targeted-consequent* variant the failure
//! predictor needs: mining rules of the form
//!
//! ```text
//! {e1, e2, …, ek} → f   (support, confidence)
//! ```
//!
//! where the consequent `f` is a designated class label (a fatal event
//! type) and the antecedent items are the non-fatal precursor event types
//! observed in the rule-generation window before it.
//!
//! * [`frequent_itemsets`] — classic levelwise Apriori,
//! * [`generate_rules`] — all-rules induction from frequent itemsets,
//! * [`mine_class_rules`] — targeted mining used by the association-rule
//!   base learner; `support` is measured over all transactions and
//!   `confidence = support(X ∪ {f}) / support(X)`.
//!
//! Items are generic over any `Copy + Ord + Hash` type. Candidate support
//! counting is hash-partitioned across Rayon workers when the candidate
//! set is large: each candidate is assigned to exactly one worker by a
//! deterministic itemset hash, each worker fills a private count table,
//! and the tables merge once per levelwise pass. The mined output is
//! bit-identical at every worker count (the `_with_partitions` variants
//! pin it explicitly; the plain entry points use one partition per
//! available core).
//!
//! # Example
//!
//! ```
//! use apriori::{mine_class_rules, ClassTransaction};
//!
//! // Ten fatal "socket" events, each preceded by warnings {1, 2}.
//! let transactions: Vec<ClassTransaction<u32, &str>> =
//!     (0..10).map(|_| ClassTransaction::new(vec![1, 2], "socketReadFailure")).collect();
//! let rules = mine_class_rules(&transactions, 0.01, 0.1, 4);
//! let rule = rules
//!     .iter()
//!     .find(|r| r.antecedent == vec![1, 2])
//!     .expect("mined {1,2} → socketReadFailure");
//! assert_eq!(rule.class, "socketReadFailure");
//! assert_eq!(rule.confidence, 1.0);
//! ```

mod classrules;
mod generic;
mod itemset;

pub use classrules::{
    mine_class_rules, mine_class_rules_with_partitions, ClassRule, ClassTransaction,
};
pub use generic::{
    frequent_itemsets, frequent_itemsets_with_partitions, generate_rules, AssociationRule,
    FrequentItemset,
};
pub use itemset::{is_normalized, is_subset_sorted, itemset_hash, join_step, Itemset};

/// Bound on item types usable by the miners.
pub trait Item: Copy + Eq + Ord + core::hash::Hash + core::fmt::Debug + Send + Sync {}
impl<T: Copy + Eq + Ord + core::hash::Hash + core::fmt::Debug + Send + Sync> Item for T {}
