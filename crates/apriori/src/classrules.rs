//! Targeted-consequent mining: rules `{precursors} → class`.
//!
//! The association-rule base learner builds one transaction per fatal event
//! in the training set: the antecedent items are the non-fatal event types
//! seen within the rule-generation window `W_P` before it, and the class is
//! the fatal event type itself. Mining then searches, per class, for
//! antecedent itemsets whose *joint* support with the class clears
//! `min_support`, emitting rules whose confidence
//! `support(X ∪ {f}) / support(X)` clears `min_confidence`.
//!
//! Confidence denominators are counted over **all** transactions, so a
//! precursor pattern that precedes many different fatal types yields low
//! confidence for each of them — exactly the discrimination the paper's
//! learner needs.

use crate::generic::{count_sharded, default_partitions, PAR_THRESHOLD};
use crate::itemset::{is_subset_sorted, join_step, normalize, Itemset};
use crate::Item;
use rayon::prelude::*;
use std::collections::HashMap;

/// One training transaction: the antecedent items observed before an
/// occurrence of `class`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassTransaction<I, C> {
    /// Precursor items (normalized internally).
    pub items: Vec<I>,
    /// The class label (e.g. the fatal event type that followed).
    pub class: C,
}

impl<I, C> ClassTransaction<I, C> {
    /// Creates a transaction.
    pub fn new(items: Vec<I>, class: C) -> Self {
        ClassTransaction { items, class }
    }
}

/// A mined rule `antecedent → class`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRule<I, C> {
    /// Sorted antecedent itemset (non-empty).
    pub antecedent: Itemset<I>,
    /// The predicted class.
    pub class: C,
    /// `|{t : X ⊆ t.items ∧ t.class = f}| / N` over all N transactions.
    pub support: f64,
    /// `support(X ∪ {f}) / support(X)` with the denominator over all
    /// transactions.
    pub confidence: f64,
}

/// Mines class rules with the levelwise Apriori strategy.
///
/// `max_len` bounds the antecedent size (the paper's rules have small
/// bodies; 4 is a practical default). Candidate counting is
/// hash-partitioned across one worker per available core; use
/// [`mine_class_rules_with_partitions`] to pin the worker count.
///
/// # Panics
/// Panics when `min_support` is outside `(0, 1]`, `min_confidence` is
/// outside `[0, 1]`, or `max_len == 0`.
pub fn mine_class_rules<I: Item, C: Item>(
    transactions: &[ClassTransaction<I, C>],
    min_support: f64,
    min_confidence: f64,
    max_len: usize,
) -> Vec<ClassRule<I, C>> {
    mine_class_rules_with_partitions(
        transactions,
        min_support,
        min_confidence,
        max_len,
        default_partitions(),
    )
}

/// [`mine_class_rules`] with an explicit counting-partition count.
/// The mined rule set — contents *and* ordering — is identical at every
/// `partitions` value; the value only controls how counting work spreads
/// across workers.
pub fn mine_class_rules_with_partitions<I: Item, C: Item>(
    transactions: &[ClassTransaction<I, C>],
    min_support: f64,
    min_confidence: f64,
    max_len: usize,
    partitions: usize,
) -> Vec<ClassRule<I, C>> {
    assert!(
        min_support > 0.0 && min_support <= 1.0,
        "min_support {min_support} outside (0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&min_confidence),
        "min_confidence {min_confidence} outside [0,1]"
    );
    assert!(max_len > 0, "max_len must be positive");
    if transactions.is_empty() {
        return Vec::new();
    }

    let n = transactions.len();
    let min_count = (min_support * n as f64).ceil().max(1.0) as usize;

    let normalized: Vec<(Itemset<I>, C)> = transactions
        .iter()
        .map(|t| (normalize(t.items.clone()), t.class))
        .collect();

    // Group transaction indices by class.
    let mut by_class: HashMap<C, Vec<usize>> = HashMap::new();
    for (idx, (_, c)) in normalized.iter().enumerate() {
        by_class.entry(*c).or_default().push(idx);
    }

    let all_sets: Vec<&Itemset<I>> = normalized.iter().map(|(s, _)| s).collect();

    let count_in = |cand: &Itemset<I>, indices: &[usize]| -> usize {
        indices
            .iter()
            .filter(|&&i| is_subset_sorted(cand, all_sets[i]))
            .count()
    };
    let count_all = |cand: &Itemset<I>| -> usize {
        if n >= PAR_THRESHOLD * 64 {
            (0..n)
                .into_par_iter()
                .filter(|&i| is_subset_sorted(cand, all_sets[i]))
                .count()
        } else {
            (0..n)
                .filter(|&i| is_subset_sorted(cand, all_sets[i]))
                .count()
        }
    };

    let mut classes: Vec<C> = by_class.keys().copied().collect();
    classes.sort();

    let mut rules = Vec::new();
    for class in classes {
        let class_idx = &by_class[&class];

        // L1: items frequent *jointly with this class*.
        let mut item_counts: HashMap<I, usize> = HashMap::new();
        for &i in class_idx {
            for &item in all_sets[i] {
                *item_counts.entry(item).or_insert(0) += 1;
            }
        }
        let mut level: Vec<Itemset<I>> = item_counts
            .iter()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(&i, _)| vec![i])
            .collect();
        level.sort();

        let mut k = 0;
        while !level.is_empty() && k < max_len {
            // Emit rules for this level.
            let counts_class: Vec<usize> =
                count_sharded(&level, partitions, |c| count_in(c, class_idx));
            let mut survivors = Vec::new();
            for (cand, joint) in level.iter().zip(&counts_class) {
                if *joint < min_count {
                    continue;
                }
                survivors.push(cand.clone());
                let ante = count_all(cand);
                debug_assert!(ante >= *joint);
                let confidence = *joint as f64 / ante as f64;
                if confidence >= min_confidence {
                    rules.push(ClassRule {
                        antecedent: cand.clone(),
                        class,
                        support: *joint as f64 / n as f64,
                        confidence,
                    });
                }
            }
            survivors.sort();
            level = join_step(&survivors);
            k += 1;
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `networkWarningInterrupt, networkError → socketReadFailure: 1.0`
    /// — the shape of the paper's SDSC example.
    #[test]
    fn paper_shaped_example() {
        const NW: u32 = 1; // networkWarningInterrupt
        const NE: u32 = 2; // networkError
        const IDO: u32 = 3; // idoStartInfo
        const SOCKET: u32 = 100;
        const FS: u32 = 101;

        let mut txs = Vec::new();
        // 10 socket failures, all preceded by {NW, NE}.
        for _ in 0..10 {
            txs.push(ClassTransaction::new(vec![NW, NE], SOCKET));
        }
        // 8 fs failures preceded by {IDO}, 2 preceded by {NW} only.
        for _ in 0..8 {
            txs.push(ClassTransaction::new(vec![IDO], FS));
        }
        for _ in 0..2 {
            txs.push(ClassTransaction::new(vec![NW], FS));
        }

        let rules = mine_class_rules(&txs, 0.05, 0.1, 3);
        let socket_rule = rules
            .iter()
            .find(|r| r.antecedent == vec![NW, NE] && r.class == SOCKET)
            .expect("missing {NW,NE}→SOCKET");
        assert!((socket_rule.confidence - 1.0).abs() < 1e-12);
        assert!((socket_rule.support - 0.5).abs() < 1e-12);

        let fs_rule = rules
            .iter()
            .find(|r| r.antecedent == vec![IDO] && r.class == FS)
            .expect("missing {IDO}→FS");
        assert!((fs_rule.confidence - 1.0).abs() < 1e-12);
        assert!((fs_rule.support - 0.4).abs() < 1e-12);

        // NW precedes both classes → {NW}→SOCKET has confidence 10/12.
        let nw_socket = rules
            .iter()
            .find(|r| r.antecedent == vec![NW] && r.class == SOCKET)
            .unwrap();
        assert!((nw_socket.confidence - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_denominator_spans_classes() {
        // Item 7 appears in 4 transactions, only 1 with class A.
        let txs = vec![
            ClassTransaction::new(vec![7], 0u8),
            ClassTransaction::new(vec![7], 1u8),
            ClassTransaction::new(vec![7], 1u8),
            ClassTransaction::new(vec![7], 1u8),
        ];
        let rules = mine_class_rules(&txs, 0.2, 0.0, 2);
        let a = rules.iter().find(|r| r.class == 0).unwrap();
        assert!((a.confidence - 0.25).abs() < 1e-12);
        let b = rules.iter().find(|r| r.class == 1).unwrap();
        assert!((b.confidence - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_support_prunes_rare_patterns() {
        let mut txs = vec![ClassTransaction::new(vec![1, 2], 9u8)];
        for _ in 0..99 {
            txs.push(ClassTransaction::new(vec![3], 8u8));
        }
        let rules = mine_class_rules(&txs, 0.05, 0.0, 3);
        assert!(
            rules.iter().all(|r| r.class != 9),
            "rare class must be pruned"
        );
        assert!(rules.iter().any(|r| r.class == 8));
    }

    #[test]
    fn multi_item_antecedents_grow_levelwise() {
        let mut txs = Vec::new();
        for _ in 0..20 {
            txs.push(ClassTransaction::new(vec![1, 2, 3], 0u8));
        }
        let rules = mine_class_rules(&txs, 0.5, 0.5, 3);
        assert!(rules.iter().any(|r| r.antecedent == vec![1, 2, 3]));
        assert!(rules.iter().any(|r| r.antecedent == vec![1, 2]));
        assert!(rules.iter().any(|r| r.antecedent == vec![1]));
        // max_len bounds antecedent size.
        let rules2 = mine_class_rules(&txs, 0.5, 0.5, 2);
        assert!(rules2.iter().all(|r| r.antecedent.len() <= 2));
    }

    #[test]
    fn empty_transactions_yield_no_rules() {
        assert!(mine_class_rules::<u32, u8>(&[], 0.1, 0.1, 3).is_empty());
        // Transactions with empty antecedents produce no rules either.
        let txs = vec![ClassTransaction::new(Vec::<u32>::new(), 0u8)];
        assert!(mine_class_rules(&txs, 0.1, 0.1, 3).is_empty());
    }

    #[test]
    fn partition_count_never_changes_rules() {
        // Enough distinct items that level sizes cross the sharding
        // threshold inside the per-class loop.
        let txs: Vec<ClassTransaction<u32, u8>> = (0..60)
            .map(|i| {
                ClassTransaction::new((0..12).map(|j| (i + j * 5) % 30).collect(), (i % 2) as u8)
            })
            .collect();
        let reference = mine_class_rules_with_partitions(&txs, 0.05, 0.0, 3, 1);
        assert!(!reference.is_empty());
        for parts in [2, 3, 7, 16] {
            let got = mine_class_rules_with_partitions(&txs, 0.05, 0.0, 3, parts);
            assert_eq!(got, reference, "partitions = {parts}");
        }
        assert_eq!(mine_class_rules(&txs, 0.05, 0.0, 3), reference);
    }

    #[test]
    fn support_and_confidence_bounds() {
        let txs: Vec<ClassTransaction<u32, u8>> = (0..50)
            .map(|i| ClassTransaction::new(vec![i % 5, (i * 3) % 7 + 10], (i % 3) as u8))
            .collect();
        for r in mine_class_rules(&txs, 0.02, 0.0, 3) {
            assert!(r.support > 0.0 && r.support <= 1.0);
            assert!(r.confidence > 0.0 && r.confidence <= 1.0);
            assert!(r.confidence >= r.support - 1e-12);
        }
    }
}
