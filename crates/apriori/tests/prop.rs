//! Property tests: the levelwise miner must agree with brute force.

use apriori::{
    frequent_itemsets, frequent_itemsets_with_partitions, generate_rules, is_subset_sorted,
    mine_class_rules, mine_class_rules_with_partitions, ClassTransaction,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn normalize(mut v: Vec<u8>) -> Vec<u8> {
    v.sort_unstable();
    v.dedup();
    v
}

fn brute_force(
    transactions: &[Vec<u8>],
    min_support: f64,
    max_len: usize,
) -> HashMap<Vec<u8>, usize> {
    let universe: Vec<u8> = normalize(transactions.iter().flatten().copied().collect());
    let n = transactions.len();
    let min_count = (min_support * n as f64).ceil().max(1.0) as usize;
    let txs: Vec<Vec<u8>> = transactions.iter().map(|t| normalize(t.clone())).collect();
    let mut out = HashMap::new();
    for mask in 1u64..(1u64 << universe.len()) {
        let items: Vec<u8> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &x)| x)
            .collect();
        if items.len() > max_len {
            continue;
        }
        let count = txs.iter().filter(|t| is_subset_sorted(&items, t)).count();
        if count >= min_count {
            out.insert(items, count);
        }
    }
    out
}

fn arb_transactions() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..8, 0..6), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_agrees_with_brute_force(
        txs in arb_transactions(),
        support_pct in 1u32..60,
        max_len in 1usize..5,
    ) {
        let min_support = support_pct as f64 / 100.0;
        let fast = frequent_itemsets(&txs, min_support, max_len);
        let slow = brute_force(&txs, min_support, max_len);
        let fast_map: HashMap<Vec<u8>, usize> =
            fast.iter().map(|f| (f.items.clone(), f.count)).collect();
        prop_assert_eq!(fast_map, slow);
    }

    #[test]
    fn rules_respect_confidence_definition(txs in arb_transactions()) {
        let freq = frequent_itemsets(&txs, 0.1, 4);
        let index: HashMap<Vec<u8>, usize> =
            freq.iter().map(|f| (f.items.clone(), f.count)).collect();
        for rule in generate_rules(&freq, txs.len(), 0.0) {
            let mut joint = rule.antecedent.clone();
            joint.extend(&rule.consequent);
            joint.sort_unstable();
            let joint_count = index[&joint];
            let ante_count = index[&rule.antecedent];
            prop_assert!((rule.confidence - joint_count as f64 / ante_count as f64).abs() < 1e-12);
            prop_assert!((rule.support - joint_count as f64 / txs.len() as f64).abs() < 1e-12);
            prop_assert!(rule.confidence >= rule.support - 1e-12);
        }
    }

    #[test]
    fn class_rules_counts_verified_by_replay(
        txs in prop::collection::vec(
            (prop::collection::vec(0u8..6, 0..5), 0u8..3),
            1..25,
        ),
        support_pct in 5u32..50,
    ) {
        let transactions: Vec<ClassTransaction<u8, u8>> = txs
            .iter()
            .map(|(items, class)| ClassTransaction::new(items.clone(), *class))
            .collect();
        let min_support = support_pct as f64 / 100.0;
        let rules = mine_class_rules(&transactions, min_support, 0.0, 4);
        let n = transactions.len();
        for rule in &rules {
            // Recount support/confidence directly.
            let joint = transactions
                .iter()
                .filter(|t| {
                    t.class == rule.class
                        && is_subset_sorted(&rule.antecedent, &normalize(t.items.clone()))
                })
                .count();
            let ante = transactions
                .iter()
                .filter(|t| is_subset_sorted(&rule.antecedent, &normalize(t.items.clone())))
                .count();
            prop_assert!((rule.support - joint as f64 / n as f64).abs() < 1e-12);
            prop_assert!((rule.confidence - joint as f64 / ante as f64).abs() < 1e-12);
            prop_assert!(rule.support >= min_support - 1e-12);
        }
    }

    #[test]
    fn sharded_counting_is_exact_at_every_worker_count(
        txs in arb_transactions(),
        support_pct in 1u32..60,
        max_len in 1usize..5,
    ) {
        // The hash-partitioned parallel pass must return the *exact*
        // itemsets, counts and ordering of the serial pass, at every
        // worker count — including degenerate ones (1 worker, more
        // workers than candidates).
        let min_support = support_pct as f64 / 100.0;
        let serial = frequent_itemsets(&txs, min_support, max_len);
        for partitions in [1usize, 2, 3, 7, 64] {
            let sharded =
                frequent_itemsets_with_partitions(&txs, min_support, max_len, partitions);
            prop_assert_eq!(&sharded, &serial, "diverged at {} partitions", partitions);
        }
    }

    #[test]
    fn sharded_class_rules_are_exact_at_every_worker_count(
        txs in prop::collection::vec(
            (prop::collection::vec(0u8..6, 0..5), 0u8..3),
            1..25,
        ),
        support_pct in 5u32..50,
    ) {
        let transactions: Vec<ClassTransaction<u8, u8>> = txs
            .iter()
            .map(|(items, class)| ClassTransaction::new(items.clone(), *class))
            .collect();
        let min_support = support_pct as f64 / 100.0;
        let serial = mine_class_rules(&transactions, min_support, 0.0, 4);
        for partitions in [1usize, 2, 5, 32] {
            let sharded = mine_class_rules_with_partitions(
                &transactions,
                min_support,
                0.0,
                4,
                partitions,
            );
            prop_assert_eq!(&sharded, &serial, "diverged at {} partitions", partitions);
        }
    }

    #[test]
    fn class_rules_are_complete_for_singletons(
        txs in prop::collection::vec(
            (prop::collection::vec(0u8..5, 1..4), 0u8..2),
            4..20,
        ),
    ) {
        // Every (item, class) pair whose joint support clears the threshold
        // must be found as a singleton rule.
        let transactions: Vec<ClassTransaction<u8, u8>> = txs
            .iter()
            .map(|(items, class)| ClassTransaction::new(items.clone(), *class))
            .collect();
        let n = transactions.len();
        let min_support = 0.2;
        let min_count = (min_support * n as f64).ceil() as usize;
        let rules = mine_class_rules(&transactions, min_support, 0.0, 3);
        for item in 0u8..5 {
            for class in 0u8..2 {
                let joint = transactions
                    .iter()
                    .filter(|t| t.class == class && t.items.contains(&item))
                    .count();
                if joint >= min_count {
                    prop_assert!(
                        rules
                            .iter()
                            .any(|r| r.antecedent == vec![item] && r.class == class),
                        "missing rule {{{item}}} → {class} with joint {joint}"
                    );
                }
            }
        }
    }
}
