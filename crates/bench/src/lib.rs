//! # dml-bench — shared fixtures for the Criterion benchmarks
//!
//! The benchmark binaries in `benches/` regenerate the performance-oriented
//! results of the paper (Table 5 and the ablation studies listed in
//! DESIGN.md). This library crate holds the common fixture builders so
//! every bench measures the same workloads.

pub mod fixtures;
pub mod provenance;
