//! Machine provenance for bench artifacts.
//!
//! Every `BENCH_*.json` the harness tracks must say *where* its numbers
//! came from: a throughput figure without the CPU, core count and date
//! behind it cannot be compared across PRs, and the ratchet script in CI
//! refuses to treat provenance-free output as a measurement. This module
//! collects that context from the host — no extra dependencies, just
//! `/proc/cpuinfo` (when present) and the standard library.

/// Hardware and platform identity of the bench host.
#[derive(Debug, Clone)]
pub struct MachineInfo {
    /// CPU model string (from `/proc/cpuinfo`, or `unknown-cpu`).
    pub cpu: String,
    /// Logical cores visible to the process.
    pub cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: &'static str,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: &'static str,
}

/// Reads the bench host's identity.
pub fn machine_info() -> MachineInfo {
    MachineInfo {
        cpu: cpu_model(),
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        os: std::env::consts::OS,
        arch: std::env::consts::ARCH,
    }
}

fn cpu_model() -> String {
    let sanitize = |s: &str| {
        s.chars()
            .filter(|c| !matches!(c, '"' | '\\' | '\n' | '\r'))
            .collect::<String>()
            .trim()
            .to_string()
    };
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            // x86 says "model name", arm64 says "Processor" / "CPU part".
            if let Some(rest) = line
                .strip_prefix("model name")
                .or_else(|| line.strip_prefix("Processor"))
            {
                if let Some(name) = rest.split(':').nth(1) {
                    let name = sanitize(name);
                    if !name.is_empty() {
                        return name;
                    }
                }
            }
        }
    }
    "unknown-cpu".to_string()
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock.
pub fn utc_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch → (year, month, day), proleptic Gregorian
/// (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// The `"machine"` JSON object for a bench artifact.
pub fn machine_json() -> String {
    let m = machine_info();
    format!(
        "{{ \"cpu\": \"{}\", \"cores\": {}, \"os\": \"{}\", \"arch\": \"{}\" }}",
        m.cpu, m.cores, m.os, m.arch
    )
}

/// The `"provenance"` string for a real measurement: date, host summary
/// and the exact command that regenerates the artifact. Set
/// `DML_BENCH_NOTE` to append an environment caveat (e.g. an offline
/// build with path-shimmed dependencies).
pub fn measured_provenance(regen_cmd: &str) -> String {
    let m = machine_info();
    let mut p = format!(
        "measured {} on {} ({} cores, {}/{}); regenerate with `{}`",
        utc_date(),
        m.cpu,
        m.cores,
        m.os,
        m.arch,
        regen_cmd,
    );
    if let Ok(note) = std::env::var("DML_BENCH_NOTE") {
        let note: String = note
            .chars()
            .filter(|c| !matches!(c, '"' | '\\' | '\n' | '\r'))
            .collect();
        if !note.trim().is_empty() {
            p.push_str("; ");
            p.push_str(note.trim());
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_matches_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn provenance_is_json_safe() {
        let p = measured_provenance("cargo bench -p dml-bench");
        assert!(p.starts_with("measured "));
        assert!(!p.contains('"') && !p.contains('\\') && !p.contains('\n'));
        let mj = machine_json();
        assert!(mj.starts_with("{ \"cpu\": \""));
        assert_eq!(mj.matches('{').count(), mj.matches('}').count());
    }

    #[test]
    fn machine_info_is_populated() {
        let m = machine_info();
        assert!(m.cores >= 1);
        assert!(!m.cpu.is_empty());
    }
}
