//! Shared benchmark fixtures.
//!
//! Every bench measures the same deterministic workloads: an SDSC-like
//! synthetic log (volume-scaled) streamed through preprocessing, plus raw
//! week slices for the filter benches.

use bgl_sim::{Generator, SystemPreset};
use preprocess::{clean_log, Categorizer, FilterConfig};
use raslog::store::BinLog;
use raslog::{CleanEvent, RasEvent, Timestamp, WEEK_MS};
use std::sync::OnceLock;

/// Weeks in the shared clean dataset.
pub const WEEKS: i64 = 30;

/// Where a checked-in bench artifact goes: the workspace root, so the
/// perf trajectory (`BENCH_*.json`) is visible across PRs regardless of
/// the directory the bench was invoked from.
pub fn bench_output_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(name)
}

/// Where binary fixture caches live (`target/bench-cache/`). Delete the
/// directory to invalidate every cache.
pub fn cache_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("bench-cache")
}

/// A clean-event fixture served through the [`BinLog`] cache.
///
/// Generating and preprocessing 30 weeks of synthetic log dominates
/// bench startup; the binary cache cuts a warm start to one sequential
/// file read. `key` must encode every parameter the fixture depends on
/// (weeks, volume scale, seed) — the binary format stores events, not
/// provenance. Any read failure (missing file, wrong version or
/// endianness, torn tail) falls back to `build` and rewrites the cache;
/// a failed write still returns the freshly built fixture.
pub fn cached_clean(key: &str, build: impl FnOnce() -> Vec<CleanEvent>) -> Vec<CleanEvent> {
    let path = cache_dir().join(format!("{key}.dmlb"));
    if let Ok(events) = BinLog::read_clean_file(&path) {
        return events;
    }
    let events = build();
    if let Err(e) = BinLog::write_clean_file(&path, &events) {
        eprintln!("bench cache write failed for {key}: {e} (continuing uncached)");
    }
    events
}

/// `true` when `DML_BENCH_QUICK` asks for the small CI-smoke workload.
pub fn quick_mode() -> bool {
    std::env::var("DML_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The shared generator (SDSC-like, reduced duplication).
pub fn generator() -> Generator {
    Generator::new(
        SystemPreset::sdsc()
            .with_weeks(WEEKS)
            .with_volume_scale(0.2),
        42,
    )
}

/// A full-duplication generator for filter benches.
pub fn volume_generator() -> Generator {
    Generator::new(SystemPreset::sdsc().with_weeks(4), 42)
}

/// One raw (duplicated) week from the volume generator.
pub fn raw_week() -> &'static Vec<RasEvent> {
    static RAW: OnceLock<Vec<RasEvent>> = OnceLock::new();
    RAW.get_or_init(|| volume_generator().week_events(1).0)
}

/// The raw week, categorized but unfiltered.
pub fn typed_week() -> &'static Vec<CleanEvent> {
    static TYPED: OnceLock<Vec<CleanEvent>> = OnceLock::new();
    TYPED.get_or_init(|| {
        let generator = volume_generator();
        let categorizer = Categorizer::new(generator.catalog().clone());
        let (typed, _) = categorizer.categorize_log(raw_week());
        typed
    })
}

/// Generates and preprocesses an SDSC-like clean dataset, served through
/// the [`BinLog`] cache (`volume_permille` is the volume scale × 1000 —
/// kept integral so it can key the cache file exactly).
pub fn clean_workload(weeks: i64, volume_permille: u32, seed: u64) -> Vec<CleanEvent> {
    let key = format!("clean_sdsc_w{weeks}_vs{volume_permille}_seed{seed}");
    cached_clean(&key, || {
        let generator = Generator::new(
            SystemPreset::sdsc()
                .with_weeks(weeks)
                .with_volume_scale(volume_permille as f64 / 1000.0),
            seed,
        );
        let categorizer = Categorizer::new(generator.catalog().clone());
        let mut clean = Vec::new();
        for week in 0..weeks {
            let (raw, _) = generator.week_events(week);
            let (mut c, _) = clean_log(&raw, &categorizer, &FilterConfig::standard());
            clean.append(&mut c);
        }
        clean
    })
}

/// The shared preprocessed dataset (BinLog-cached across bench runs).
pub fn clean_dataset() -> &'static Vec<CleanEvent> {
    static CLEAN: OnceLock<Vec<CleanEvent>> = OnceLock::new();
    CLEAN.get_or_init(|| clean_workload(WEEKS, 200, 42))
}

/// A fleet-scale *serving mix*: the cleaned event streams of `machines`
/// machines merged into one time-sorted feed, noise-dominated (~1.4 %
/// fatal) like a production RAS stream rather than the fatal-heavy
/// single-system fixture, and dense enough that the prediction window
/// actually holds events (~10 at 200 machines). The predictor hot-path
/// bench trains and serves on this stream; it is BinLog-cached like the
/// other fixtures.
pub fn serving_stream(machines: u32, weeks: i64, seed: u64) -> Vec<CleanEvent> {
    let key = format!("serving_m{machines}_w{weeks}_seed{seed}");
    cached_clean(&key, || {
        let preset = bgl_sim::FleetPreset {
            topology: bgl_sim::topology::FleetTopology::new(machines),
            weeks,
            chains_per_machine_week: 0.5,
            noise_per_machine_week: 40.0,
            isolated_fatal_prob: 0.01,
            outage_background_per_machine_week: 0.05,
        };
        bgl_sim::FleetGenerator::new(preset, seed)
            .generate()
            .into_iter()
            .map(|me| me.event)
            .collect()
    })
}

/// The first `weeks` weeks of the clean dataset.
pub fn training_slice(weeks: i64) -> &'static [CleanEvent] {
    let clean = clean_dataset();
    raslog::store::window(
        clean,
        Timestamp::ZERO,
        Timestamp(weeks.min(WEEKS) * WEEK_MS),
    )
}

/// One clean test week following the training prefix.
pub fn test_week(after_weeks: i64) -> &'static [CleanEvent] {
    let clean = clean_dataset();
    raslog::store::window(
        clean,
        Timestamp(after_weeks * WEEK_MS),
        Timestamp((after_weeks + 1).min(WEEKS) * WEEK_MS),
    )
}
