//! Shared benchmark fixtures.
//!
//! Every bench measures the same deterministic workloads: an SDSC-like
//! synthetic log (volume-scaled) streamed through preprocessing, plus raw
//! week slices for the filter benches.

use bgl_sim::{Generator, SystemPreset};
use preprocess::{clean_log, Categorizer, FilterConfig};
use raslog::{CleanEvent, RasEvent, Timestamp, WEEK_MS};
use std::sync::OnceLock;

/// Weeks in the shared clean dataset.
pub const WEEKS: i64 = 30;

/// Where a checked-in bench artifact goes: the workspace root, so the
/// perf trajectory (`BENCH_*.json`) is visible across PRs regardless of
/// the directory the bench was invoked from.
pub fn bench_output_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(name)
}

/// `true` when `DML_BENCH_QUICK` asks for the small CI-smoke workload.
pub fn quick_mode() -> bool {
    std::env::var("DML_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The shared generator (SDSC-like, reduced duplication).
pub fn generator() -> Generator {
    Generator::new(
        SystemPreset::sdsc()
            .with_weeks(WEEKS)
            .with_volume_scale(0.2),
        42,
    )
}

/// A full-duplication generator for filter benches.
pub fn volume_generator() -> Generator {
    Generator::new(SystemPreset::sdsc().with_weeks(4), 42)
}

/// One raw (duplicated) week from the volume generator.
pub fn raw_week() -> &'static Vec<RasEvent> {
    static RAW: OnceLock<Vec<RasEvent>> = OnceLock::new();
    RAW.get_or_init(|| volume_generator().week_events(1).0)
}

/// The raw week, categorized but unfiltered.
pub fn typed_week() -> &'static Vec<CleanEvent> {
    static TYPED: OnceLock<Vec<CleanEvent>> = OnceLock::new();
    TYPED.get_or_init(|| {
        let generator = volume_generator();
        let categorizer = Categorizer::new(generator.catalog().clone());
        let (typed, _) = categorizer.categorize_log(raw_week());
        typed
    })
}

/// The shared preprocessed dataset.
pub fn clean_dataset() -> &'static Vec<CleanEvent> {
    static CLEAN: OnceLock<Vec<CleanEvent>> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let generator = generator();
        let categorizer = Categorizer::new(generator.catalog().clone());
        let mut clean = Vec::new();
        for week in 0..WEEKS {
            let (raw, _) = generator.week_events(week);
            let (mut c, _) = clean_log(&raw, &categorizer, &FilterConfig::standard());
            clean.append(&mut c);
        }
        clean
    })
}

/// The first `weeks` weeks of the clean dataset.
pub fn training_slice(weeks: i64) -> &'static [CleanEvent] {
    let clean = clean_dataset();
    raslog::store::window(
        clean,
        Timestamp::ZERO,
        Timestamp(weeks.min(WEEKS) * WEEK_MS),
    )
}

/// One clean test week following the training prefix.
pub fn test_week(after_weeks: i64) -> &'static [CleanEvent] {
    let clean = clean_dataset();
    raslog::store::window(
        clean,
        Timestamp(after_weeks * WEEK_MS),
        Timestamp((after_weeks + 1).min(WEEKS) * WEEK_MS),
    )
}
