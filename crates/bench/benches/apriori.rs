//! Association-rule mining: targeted-consequent mining vs generic
//! frequent-itemset mining plus rule induction (the pruning ablation from
//! DESIGN.md).

use apriori::{frequent_itemsets, generate_rules, mine_class_rules};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml_bench::fixtures;
use dml_core::learners::transactions_for_bench;
use raslog::Duration;

fn bench_apriori(c: &mut Criterion) {
    let mut group = c.benchmark_group("apriori");
    group.sample_size(10);
    for weeks in [8i64, 26] {
        let txs = transactions_for_bench(fixtures::training_slice(weeks), Duration::from_secs(300));
        group.bench_with_input(
            BenchmarkId::new("targeted", format!("{weeks}wk/{}tx", txs.len())),
            &txs,
            |b, txs| {
                b.iter(|| std::hint::black_box(mine_class_rules(txs, 0.01, 0.1, 4)));
            },
        );
        // Generic ablation: mine all frequent itemsets over item+class
        // transactions, then induce rules (no consequent targeting).
        let generic: Vec<Vec<u32>> = txs
            .iter()
            .map(|t| {
                let mut items: Vec<u32> = t.items.iter().map(|i| i.0 as u32).collect();
                items.push(10_000 + t.class.0 as u32); // class as an item
                items
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("generic", format!("{weeks}wk/{}tx", txs.len())),
            &generic,
            |b, generic| {
                b.iter(|| {
                    let freq = frequent_itemsets(generic, 0.01, 5);
                    std::hint::black_box(generate_rules(&freq, generic.len(), 0.1))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apriori);
criterion_main!(benches);
