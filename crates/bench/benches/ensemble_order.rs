//! Ablation: predictor cost by repository composition (association only /
//! statistical only / distribution only / full mixture-of-experts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dml_bench::fixtures;
use dml_core::{FrameworkConfig, MetaLearner, Predictor, RuleKind};

fn bench_ensemble(c: &mut Criterion) {
    let config = FrameworkConfig::default();
    let meta = MetaLearner::new(config);
    let train = fixtures::training_slice(26);
    let test = fixtures::test_week(26);
    let mut group = c.benchmark_group("ensemble_order");
    group.throughput(Throughput::Elements(test.len() as u64));
    group.sample_size(20);

    let full = meta.train(train);
    group.bench_with_input(
        BenchmarkId::from_parameter("meta"),
        &full.repo,
        |b, repo| {
            b.iter(|| std::hint::black_box(Predictor::new(repo, config.window).observe_all(test)));
        },
    );
    for kind in [
        RuleKind::Association,
        RuleKind::Statistical,
        RuleKind::Distribution,
    ] {
        let single = meta.train_single_kind(train, kind);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind}")),
            &single.repo,
            |b, repo| {
                b.iter(|| {
                    std::hint::black_box(Predictor::new(repo, config.window).observe_all(test))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ensemble);
criterion_main!(benches);
