//! Predictor hot path: batch serving vs the retired per-event loop.
//!
//! Three configurations are measured over the same trained repository
//! and test week, each on a fresh predictor:
//!
//! * **batch sampled** — `observe_all` (the production path) with the
//!   default latency sampling; this is the headline number.
//! * **batch counters-only** — latency sampling disabled, bounding the
//!   PR-2 instrumentation overhead (< 5 % acceptance budget).
//! * **per-event** — `observe_all_per_event`, the retired
//!   one-`observe`-call-per-event serving loop, kept as the baseline the
//!   batch path must beat (≥ 1.5× acceptance) and as the parity oracle.
//!
//! The bench writes `BENCH_predictor.json` at the workspace root with
//! all three throughputs, the sampled match-latency percentiles, and
//! machine provenance. `DML_BENCH_QUICK=1` shrinks the workload to a
//! CI-smoke size (same schema, fewer weeks and repetitions) and skips
//! the Criterion groups.

use criterion::{criterion_group, Criterion, Throughput};
use dml_bench::{fixtures, provenance};
use dml_core::{
    FrameworkConfig, KnowledgeRepository, MetaLearner, Predictor, PredictorMetrics,
    DEFAULT_LATENCY_SAMPLE_EVERY,
};
use raslog::CleanEvent;
use std::sync::OnceLock;
use std::time::Instant;

struct Setup {
    repo: KnowledgeRepository,
    config: FrameworkConfig,
    test: Vec<CleanEvent>,
    mode: &'static str,
    reps: usize,
}

fn build_setup() -> Setup {
    let quick = fixtures::quick_mode();
    let config = FrameworkConfig::default();
    // The single-system fixture is both sparse (~130 events/week) and
    // fatal-heavy (~30 %) — a warning-construction microbench, not a
    // serving-loop one. The hot path is measured on the fleet serving
    // mix instead: dense, noise-dominated, ~1.4 % fatal.
    let (events, train_weeks, reps, mode) = if quick {
        (fixtures::serving_stream(50, 4, 7), 2i64, 3, "quick")
    } else {
        (fixtures::serving_stream(200, 10, 7), 4i64, 12, "full")
    };
    let week = raslog::WEEK_MS;
    let train = raslog::store::window(
        &events,
        raslog::Timestamp::ZERO,
        raslog::Timestamp(train_weeks * week),
    );
    let test = raslog::store::window(
        &events,
        raslog::Timestamp(train_weeks * week),
        raslog::Timestamp(i64::MAX),
    )
    .to_vec();
    let outcome = MetaLearner::new(config).train(train);
    Setup {
        repo: outcome.repo,
        config,
        test,
        mode,
        reps,
    }
}

fn setup() -> &'static Setup {
    static SETUP: OnceLock<Setup> = OnceLock::new();
    SETUP.get_or_init(build_setup)
}

/// How one rep serves the test week.
#[derive(Clone, Copy)]
enum Path {
    Batch,
    PerEvent,
}

/// Best-of-`reps` wall time for one configuration, plus its metrics.
fn events_per_sec(s: &Setup, path: Path, every: u32) -> (f64, PredictorMetrics) {
    let mut best = f64::INFINITY;
    let mut metrics = PredictorMetrics::default();
    for _ in 0..s.reps {
        let mut p = Predictor::new(&s.repo, s.config.window);
        p.set_latency_sampling(every);
        let t = Instant::now();
        match path {
            Path::Batch => std::hint::black_box(p.observe_all(&s.test)),
            Path::PerEvent => std::hint::black_box(p.observe_all_per_event(&s.test)),
        };
        best = best.min(t.elapsed().as_secs_f64());
        metrics = p.metrics().clone();
    }
    (s.test.len() as f64 / best.max(1e-9), metrics)
}

fn bench_predictor_hot_path(c: &mut Criterion) {
    let s = setup();
    let mut group = c.benchmark_group("predictor_hot_path");
    group.throughput(Throughput::Elements(s.test.len() as u64));
    for (label, path, every) in [
        ("batch_sampled_metrics", Path::Batch, DEFAULT_LATENCY_SAMPLE_EVERY),
        ("batch_counters_only", Path::Batch, 0),
        ("per_event_retired", Path::PerEvent, DEFAULT_LATENCY_SAMPLE_EVERY),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut p = Predictor::new(&s.repo, s.config.window);
                p.set_latency_sampling(every);
                match path {
                    Path::Batch => std::hint::black_box(p.observe_all(&s.test)),
                    Path::PerEvent => std::hint::black_box(p.observe_all_per_event(&s.test)),
                }
            });
        });
    }
    group.finish();
}

/// Writes the machine-readable summary the perf harness ratchets on.
fn write_bench_json() -> std::io::Result<&'static str> {
    let s = setup();
    let (batch, m) = events_per_sec(s, Path::Batch, DEFAULT_LATENCY_SAMPLE_EVERY);
    let (counters_only, _) = events_per_sec(s, Path::Batch, 0);
    let (per_event, pm) = events_per_sec(s, Path::PerEvent, DEFAULT_LATENCY_SAMPLE_EVERY);
    assert_eq!(
        (m.events_observed, m.warnings_issued),
        (pm.events_observed, pm.warnings_issued),
        "batch and per-event paths disagree on counters — parity broken"
    );
    let overhead_pct = 100.0 * (counters_only / batch - 1.0);
    let h = &m.match_latency_us;
    let json = format!(
        "{{\n  \"bench\": \"predictor_hot_path\",\n  \"mode\": \"{}\",\n  \"events\": {},\n  \
         \"rules\": {},\n  \"batch_events_per_sec\": {:.0},\n  \
         \"per_event_events_per_sec\": {:.0},\n  \"batch_speedup\": {:.3},\n  \
         \"instrumented_events_per_sec\": {:.0},\n  \"baseline_events_per_sec\": {:.0},\n  \
         \"instrumentation_overhead_pct\": {:.2},\n  \"match_latency_us\": {{ \"p50\": {:.2}, \
         \"p95\": {:.2}, \"p99\": {:.2}, \"samples\": {} }},\n  \"machine\": {},\n  \
         \"provenance\": \"{}\"\n}}\n",
        s.mode,
        s.test.len(),
        s.repo.len(),
        batch,
        per_event,
        batch / per_event.max(1e-9),
        batch,
        counters_only,
        overhead_pct,
        h.p50(),
        h.p95(),
        h.p99(),
        h.count(),
        provenance::machine_json(),
        provenance::measured_provenance("cargo bench -p dml-bench --bench predictor_hot_path"),
    );
    let path = fixtures::bench_output_path("BENCH_predictor.json");
    std::fs::write(&path, json)?;
    Ok("BENCH_predictor.json")
}

criterion_group!(benches, bench_predictor_hot_path);

fn main() {
    // Quick mode skips the Criterion groups entirely — CI only needs the
    // JSON artifact, produced from the small workload.
    if !fixtures::quick_mode() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
    match write_bench_json() {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("BENCH_predictor.json not written: {e}");
            std::process::exit(1);
        }
    }
}
