//! Predictor hot path: per-event observe() cost with metrics on.
//!
//! Two configurations bound the cost of the PR-2 instrumentation: the
//! default (counters inline, latency `Instant` pairs every 64th event)
//! versus latency sampling disabled (counters only). The acceptance
//! budget is < 5 % overhead on the instrumented path.
//!
//! Besides the criterion groups, the bench writes `BENCH_predictor.json`
//! (events/sec for both configurations, the measured overhead, and the
//! sampled match-latency percentiles) to seed the perf trajectory.

use criterion::{criterion_group, Criterion, Throughput};
use dml_bench::fixtures;
use dml_core::{
    FrameworkConfig, MetaLearner, Predictor, PredictorMetrics, DEFAULT_LATENCY_SAMPLE_EVERY,
};
use std::time::Instant;

fn bench_predictor_hot_path(c: &mut Criterion) {
    let config = FrameworkConfig::default();
    let outcome = MetaLearner::new(config).train(fixtures::training_slice(26));
    let test = fixtures::test_week(26);
    let mut group = c.benchmark_group("predictor_hot_path");
    group.throughput(Throughput::Elements(test.len() as u64));
    for (label, every) in [
        ("sampled_metrics", DEFAULT_LATENCY_SAMPLE_EVERY),
        ("counters_only", 0),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut p = Predictor::new(&outcome.repo, config.window);
                p.set_latency_sampling(every);
                std::hint::black_box(p.observe_all(test))
            });
        });
    }
    group.finish();
}

/// Best-of-`reps` wall time for one configuration, plus its metrics.
fn events_per_sec(
    repo: &dml_core::KnowledgeRepository,
    config: &FrameworkConfig,
    test: &[raslog::CleanEvent],
    every: u32,
    reps: usize,
) -> (f64, PredictorMetrics) {
    let mut best = f64::INFINITY;
    let mut metrics = PredictorMetrics::default();
    for _ in 0..reps {
        let mut p = Predictor::new(repo, config.window);
        p.set_latency_sampling(every);
        let t = Instant::now();
        std::hint::black_box(p.observe_all(test));
        best = best.min(t.elapsed().as_secs_f64());
        metrics = p.metrics().clone();
    }
    (test.len() as f64 / best.max(1e-9), metrics)
}

/// Writes the machine-readable summary the perf harness tracks.
fn write_bench_json() -> std::io::Result<&'static str> {
    let config = FrameworkConfig::default();
    let outcome = MetaLearner::new(config).train(fixtures::training_slice(26));
    let test = fixtures::test_week(26);
    let reps = 15;
    let (instr, m) = events_per_sec(
        &outcome.repo,
        &config,
        test,
        DEFAULT_LATENCY_SAMPLE_EVERY,
        reps,
    );
    let (base, _) = events_per_sec(&outcome.repo, &config, test, 0, reps);
    let overhead_pct = 100.0 * (base / instr - 1.0);
    let h = &m.match_latency_us;
    let json = format!(
        "{{\n  \"bench\": \"predictor_hot_path\",\n  \"events\": {},\n  \"rules\": {},\n  \
         \"instrumented_events_per_sec\": {:.0},\n  \"baseline_events_per_sec\": {:.0},\n  \
         \"instrumentation_overhead_pct\": {:.2},\n  \"match_latency_us\": {{ \"p50\": {:.2}, \
         \"p95\": {:.2}, \"p99\": {:.2}, \"samples\": {} }}\n}}\n",
        test.len(),
        outcome.repo.len(),
        instr,
        base,
        overhead_pct,
        h.p50(),
        h.p95(),
        h.p99(),
        h.count(),
    );
    let path = fixtures::bench_output_path("BENCH_predictor.json");
    std::fs::write(&path, json)?;
    Ok("BENCH_predictor.json")
}

criterion_group!(benches, bench_predictor_hot_path);

fn main() {
    benches();
    Criterion::default().configure_from_args().final_summary();
    match write_bench_json() {
        Ok(path) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("BENCH_predictor.json not written: {e}"),
    }
}
