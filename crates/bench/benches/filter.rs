//! Table 4 substrate: temporal+spatial compression throughput per
//! threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dml_bench::fixtures;
use preprocess::{filter_events, FilterConfig};
use raslog::Duration;

fn bench_filter(c: &mut Criterion) {
    let typed = fixtures::typed_week();
    let mut group = c.benchmark_group("filter");
    group.throughput(Throughput::Elements(typed.len() as u64));
    group.sample_size(20);
    for secs in [10i64, 60, 300] {
        let config = FilterConfig::with_threshold(Duration::from_secs(secs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{secs}s")),
            &config,
            |b, config| {
                b.iter(|| std::hint::black_box(filter_events(typed, config)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_filter);
criterion_main!(benches);
