//! Table 5 (rule generation): training cost as a function of training size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml_bench::fixtures;
use dml_core::{FrameworkConfig, MetaLearner};

fn bench_rule_generation(c: &mut Criterion) {
    let meta = MetaLearner::new(FrameworkConfig::default());
    let mut group = c.benchmark_group("rule_generation");
    group.sample_size(10);
    for weeks in [4i64, 8, 13, 26] {
        let slice = fixtures::training_slice(weeks);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{weeks}wk")),
            &slice,
            |b, slice| {
                b.iter(|| std::hint::black_box(meta.train(slice)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rule_generation);
criterion_main!(benches);
