//! Table 5 (rule matching): event-driven predictor throughput.
//!
//! The paper reports matching cost "usually in dozens of seconds" per week
//! on 2005 hardware; the event-driven design should make it trivial here.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dml_bench::fixtures;
use dml_core::{FrameworkConfig, MetaLearner, Predictor};

fn bench_rule_matching(c: &mut Criterion) {
    let config = FrameworkConfig::default();
    let outcome = MetaLearner::new(config).train(fixtures::training_slice(26));
    let test = fixtures::test_week(26);
    let mut group = c.benchmark_group("rule_matching");
    group.throughput(Throughput::Elements(test.len() as u64));
    group.bench_function("one_week", |b| {
        b.iter(|| {
            let mut p = Predictor::new(&outcome.repo, config.window);
            std::hint::black_box(p.observe_all(test))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_rule_matching);
criterion_main!(benches);
