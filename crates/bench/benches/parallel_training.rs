//! Ablation: Rayon-parallel rule revision vs a single-thread pool.
//!
//! (On a single-core host both configurations collapse to the same cost;
//! the bench documents that the parallel path adds no measurable overhead.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dml_bench::fixtures;
use dml_core::learners::standard_learners;
use dml_core::reviser::revise;
use dml_core::FrameworkConfig;

fn bench_parallel_training(c: &mut Criterion) {
    let config = FrameworkConfig::default();
    let train = fixtures::training_slice(26);
    let candidates: Vec<dml_core::Rule> = standard_learners()
        .iter()
        .flat_map(|l| l.learn(train, &config))
        .collect();
    let mut group = c.benchmark_group("parallel_training");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}threads/{}rules", candidates.len())),
            &candidates,
            |b, candidates| {
                b.iter(|| {
                    pool.install(|| {
                        std::hint::black_box(revise(candidates.clone(), train, &config))
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_training);
criterion_main!(benches);
