//! End-to-end driver throughput: serial vs overlapped retraining.
//!
//! The serial driver stalls the event stream for every retraining, so
//! its wall-clock is `predict + retrain`; the overlapped driver hides
//! retraining behind serving and approaches `max(predict, retrain)`.
//! This bench replays a fixed-seed multi-block workload through both and
//! writes `BENCH_driver.json` at the workspace root: events/sec for each
//! mode, the wall-clock breakdown, and the staleness the overlap paid.
//!
//! `DML_BENCH_QUICK=1` shrinks the workload to a CI-smoke size (same
//! schema, fewer weeks and repetitions).

use criterion::{criterion_group, Criterion, Throughput};
use dml_bench::{fixtures, provenance};
use dml_core::{
    run_driver, run_overlapped_driver, DriverConfig, DriverReport, FrameworkConfig, SwapMode,
    TrainingPolicy,
};
use raslog::CleanEvent;
use std::sync::OnceLock;
use std::time::Instant;

/// The replay workload: `(events, weeks, config)`.
struct Workload {
    events: Vec<CleanEvent>,
    weeks: i64,
    config: DriverConfig,
    mode: &'static str,
}

fn build_workload() -> Workload {
    let quick = fixtures::quick_mode();
    // Full mode: 26 weeks of initial training and a >6-month replay with
    // a retraining every 4 weeks — the paper's dynamic schedule at bench
    // scale. Quick mode keeps the same shape at CI-smoke size. The
    // workload is served through the BinLog fixture cache, so repeat
    // runs skip generation + preprocessing entirely.
    let (weeks, permille, initial, window, retrain_every) = if quick {
        (12i64, 50u32, 4i64, 4i64, 2i64)
    } else {
        (56i64, 200u32, 26i64, 26i64, 4i64)
    };
    let events = fixtures::clean_workload(weeks, permille, 42);
    Workload {
        events,
        weeks,
        config: DriverConfig {
            framework: FrameworkConfig {
                retrain_weeks: retrain_every,
                ..FrameworkConfig::default()
            },
            policy: TrainingPolicy::SlidingWeeks(window),
            initial_training_weeks: initial,
            only_kind: None,
        },
        mode: if quick { "quick" } else { "full" },
    }
}

fn workload() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(build_workload)
}

fn bench_driver_throughput(c: &mut Criterion) {
    let w = workload();
    let mut group = c.benchmark_group("driver_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(w.events.len() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| std::hint::black_box(run_driver(&w.events, w.weeks, &w.config)));
    });
    group.bench_function("overlapped", |b| {
        b.iter(|| {
            std::hint::black_box(run_overlapped_driver(
                &w.events,
                w.weeks,
                &w.config,
                SwapMode::overlapped(),
            ))
        });
    });
    group.finish();
}

/// Best-of-`reps` wall seconds plus the last report.
fn best_wall(reps: usize, run: impl Fn() -> DriverReport) -> (f64, DriverReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let report = run();
        best = best.min(t.elapsed().as_secs_f64());
        last = Some(report);
    }
    (best, last.expect("at least one rep"))
}

fn write_bench_json() -> std::io::Result<()> {
    let w = workload();
    let reps = if fixtures::quick_mode() { 2 } else { 4 };
    let n = w.events.len() as f64;

    let (serial_wall, _) = best_wall(reps, || run_driver(&w.events, w.weeks, &w.config));
    let (over_wall, over_report) = best_wall(reps, || {
        run_overlapped_driver(&w.events, w.weeks, &w.config, SwapMode::overlapped())
    });
    let stats = over_report.overlap.expect("overlapped run records stats");

    let json = format!(
        "{{\n  \"bench\": \"driver_throughput\",\n  \"mode\": \"{}\",\n  \"weeks\": {},\n  \
         \"events\": {},\n  \"serial\": {{ \"wall_ms\": {:.1}, \"events_per_sec\": {:.0} }},\n  \
         \"overlapped\": {{ \"wall_ms\": {:.1}, \"events_per_sec\": {:.0}, \
         \"retrain_wall_ms\": {:.1}, \"retrain_overlap_ms\": {:.1}, \"blocked_wait_ms\": {:.1}, \
         \"swap_staleness_events\": {}, \"swaps_mid_block\": {}, \"swaps_at_boundary\": {} }},\n  \
         \"speedup\": {:.3},\n  \"machine\": {},\n  \"provenance\": \"{}\"\n}}\n",
        w.mode,
        w.weeks,
        w.events.len(),
        serial_wall * 1e3,
        n / serial_wall.max(1e-9),
        over_wall * 1e3,
        n / over_wall.max(1e-9),
        stats.retrain_wall_ms,
        stats.retrain_overlap_ms(),
        stats.blocked_wait_ms,
        stats.swap_staleness_events,
        stats.swaps_mid_block,
        stats.swaps_at_boundary,
        serial_wall / over_wall.max(1e-9),
        provenance::machine_json(),
        provenance::measured_provenance("cargo bench -p dml-bench --bench driver_throughput"),
    );
    let path = fixtures::bench_output_path("BENCH_driver.json");
    std::fs::write(&path, json)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}

criterion_group!(benches, bench_driver_throughput);

fn main() {
    // Quick mode skips the criterion groups entirely — CI only needs the
    // JSON artifact, produced from the small workload.
    if !fixtures::quick_mode() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
    if let Err(e) = write_bench_json() {
        eprintln!("BENCH_driver.json not written: {e}");
        std::process::exit(1);
    }
}
