//! Synthetic log generation throughput (Table 2 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dml_bench::fixtures;

fn bench_generator(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    let volume = fixtures::volume_generator();
    let n = volume.week_events(1).0.len();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter("sdsc_full_week"),
        &volume,
        |b, g| {
            b.iter(|| std::hint::black_box(g.week_events(1)));
        },
    );
    let scaled = fixtures::generator();
    group.bench_with_input(
        BenchmarkId::from_parameter("sdsc_scaled_week"),
        &scaled,
        |b, g| {
            b.iter(|| std::hint::black_box(g.week_events(1)));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
